"""The pluggable forwarding-policy interface.

The thesis treats the forwarding probability *p* as the protocol's single
knob (§3.2.2): every buffered packet is offered to every output port and
an RND circuit fires with probability *p*.  The rumor-spreading literature
since then has produced markedly smarter dissemination rules — counter
("median rule") gossip that silences a rumor after *k* duplicate
receptions (arXiv:1209.6158), and congestion/fault-adaptive forwarding
(arXiv:1811.11262).  This package makes the forwarding rule a first-class,
swappable component so those variants (and future routing experiments) run
on the unmodified engine.

Contract
--------

A :class:`ForwardingPolicy` is a *stateful, per-run* object.  The engine
drives it through four hooks:

* :meth:`ForwardingPolicy.on_round_begin` — once per gossip round, before
  any traffic of that round moves;
* :meth:`ForwardingPolicy.decide` — once per (packet, output link) pair
  during the send phase; returning True transmits a copy on that link;
* :meth:`ForwardingPolicy.on_duplicate_received` — whenever a tile's
  receive path suppresses an intact duplicate (the signal counter-based
  gossip feeds on);
* :meth:`ForwardingPolicy.on_dead_link` — whenever a transmission vanishes
  on a crashed link (the signal fault-adaptive policies feed on).

Because policies are stateful, *configuration* is carried separately by a
frozen, picklable :class:`PolicySpec`: sweep harnesses and
:class:`repro.noc.config.SimConfig` store the spec, and every simulator
run builds a fresh policy instance via :func:`build_policy`, so no state
ever leaks between runs and cached sweep results can never alias across
policies (the spec participates in the config's content hash).

Performance note: :meth:`ForwardingPolicy.decisions` is the engine-facing
batch entry point (one call per packet per round).  Its default loops over
ports calling :meth:`decide`; policies with a vectorisable rule override
it (see :class:`repro.policies.bernoulli.BernoulliPolicy`) — the per-link
``decide`` stays the semantic contract either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.protocol import ForwardDecision, StochasticProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packet import Packet


@dataclass(frozen=True)
class BatchDecisionView:
    """One send phase's packet rows, as arrays, for vectorised policies.

    The fast engine backend offers the *whole* round's (tile, buffered
    packet) rows to :meth:`ForwardingPolicy.decide_batch` at once.  Rows
    are ordered exactly as the per-object engine would visit them: tiles
    in id order, each tile's packets in buffer-insertion order.

    Attributes:
        round_index: current gossip round.
        tile_ids: owning (forwarding) tile per row.
        sources: packet-key source half per row.
        message_ids: packet-key message-id half per row.
        buffer_occupancy: the owning tile's send-buffer size per row.
        buffer_capacity: the global buffer bound, or None when unbounded.
        max_degree: the topology's maximum port count — the column width
            a 2-D :meth:`ForwardingPolicy.decide_batch` matrix must have
            (None on engines that never use the matrix form).
    """

    round_index: int
    tile_ids: np.ndarray
    sources: np.ndarray
    message_ids: np.ndarray
    buffer_occupancy: np.ndarray
    buffer_capacity: int | None
    max_degree: int | None = None

    def __len__(self) -> int:
        return len(self.tile_ids)


@dataclass(frozen=True)
class PolicyContext:
    """What a policy may observe when deciding one (packet, link) pair.

    Attributes:
        tile_id: the forwarding tile.
        round_index: current gossip round.
        rng: the simulation's single RNG (policies must draw all
            randomness from it so runs stay seed-reproducible).
        neighbors: the tile's full output-port neighbor tuple.
        buffer_occupancy: packets currently in the tile's send-buffer.
        buffer_capacity: the buffer bound, or None when unbounded.
    """

    tile_id: int
    round_index: int
    rng: np.random.Generator
    neighbors: tuple[int, ...]
    buffer_occupancy: int = 0
    buffer_capacity: int | None = None


@dataclass(frozen=True)
class PolicySpec:
    """Frozen, picklable description of one policy configuration.

    Attributes:
        kind: registry name of the policy class ("bernoulli", "flood",
            "counter", "adaptive", ...).
        params: constructor keyword arguments as a sorted tuple of
            ``(name, value)`` pairs — tuple form keeps the spec hashable
            and its repr deterministic (it feeds cache tokens).
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, kind: str, **params: Any) -> "PolicySpec":
        """Build a spec from keyword arguments.

        >>> PolicySpec.of("bernoulli", forward_probability=0.5).kind
        'bernoulli'
        """
        return cls(kind=kind, params=tuple(sorted(params.items())))

    def as_dict(self) -> dict[str, Any]:
        """The params as a plain keyword dict."""
        return dict(self.params)

    def build(self) -> "ForwardingPolicy":
        """Instantiate a fresh (zero-state) policy from this spec."""
        return build_policy(self)

    @property
    def name(self) -> str:
        """Human-readable label used in experiment tables."""
        if not self.params:
            return self.kind
        inner = ", ".join(f"{key}={value:g}" if isinstance(value, float)
                          else f"{key}={value}" for key, value in self.params)
        return f"{self.kind}({inner})"

    def describe(self) -> tuple:
        """Canonical tuple form for content hashing (cache keys)."""
        return ("PolicySpec", self.kind, self.params)


class ForwardingPolicy:
    """Base class for per-run forwarding policies.

    Subclasses set :attr:`kind`, implement :meth:`decide`, and return
    their constructor arguments from :meth:`spec_params`; the stateful
    ones also override :meth:`reset` (called once by the engine before
    round 0) and whichever observation hooks they feed on.
    """

    #: Registry name; subclasses registered via :func:`register_policy`.
    kind: str = ""

    #: Does this policy run a *pull* phase?  When True the engine adds a
    #: pull step after every send phase (uninformed tiles request the
    #: rumor from neighbors chosen by :meth:`pull_targets`).  Push-only
    #: policies keep the default False and their runs are bit-identical
    #: to the pre-pull engine: the phase is skipped entirely and no RNG
    #: draws happen.
    uses_pull: bool = False

    # ------------------------------------------------------------- identity

    def spec_params(self) -> dict[str, Any]:
        """Constructor kwargs that rebuild this policy (spec payload)."""
        return {}

    @property
    def spec(self) -> PolicySpec:
        """The frozen spec describing this policy's configuration."""
        return PolicySpec.of(self.kind, **self.spec_params())

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_deterministic(self) -> bool:
        """Does the policy ever draw from the RNG?"""
        return False

    # ----------------------------------------------------------------- hooks

    def reset(self) -> None:
        """Clear all per-run state (engine calls this before round 0)."""

    def bind(self, topology: Any) -> None:
        """Receive the run's topology before :meth:`reset` is called.

        Most policies are topology-oblivious and keep this no-op; route
        computing policies (e.g. ``adaptive_route``) cache shortest-path
        structure here.  The engine calls ``bind`` exactly once per run,
        with the same :class:`repro.noc.topology.Topology` on every
        backend.
        """
        del topology

    def on_round_begin(self, round_index: int) -> None:
        """A new gossip round is starting."""

    def on_duplicate_received(
        self, tile_id: int, packet: "Packet", round_index: int
    ) -> None:
        """`tile_id` received (and suppressed) an intact duplicate copy."""

    def on_dead_link(self, src: int, dst: int, round_index: int) -> None:
        """A transmission from `src` vanished on the dead link to `dst`.

        Backend note: the object engine fires this hook interleaved with
        the round's remaining forwarding decisions while the fast
        backend's vectorised path fires it after computing *all* of the
        round's decisions.  Policies that react to dead links must
        therefore latch the reaction here and promote it at the next
        :meth:`on_round_begin` — reacting mid-round would make results
        backend-dependent.
        """

    # ------------------------------------------------------------------ pull

    def pull_targets(
        self,
        tile_id: int,
        neighbors: tuple[int, ...],
        rng: np.random.Generator,
        *,
        round_index: int,
        informed: bool,
    ) -> tuple[int, ...]:
        """Neighbors `tile_id` sends pull requests to this round.

        Only consulted when :attr:`uses_pull` is True.  The engine calls
        it once per live tile per round, tiles in id order; any RND draws
        must come from `rng` (and informed tiles should return ``()``
        *without drawing* so the stream stays backend-independent).  Each
        returned neighbor receives one pull request: if it is alive,
        informed and the links are up, it answers by transmitting its
        buffered packets back to `tile_id`.
        """
        del tile_id, neighbors, rng, round_index, informed
        return ()

    # ------------------------------------------------------------- decisions

    def decide(
        self, packet: "Packet", link: tuple[int, int], ctx: PolicyContext
    ) -> bool:
        """Should `packet` be transmitted over `link` this round?

        `link` is the directed pair ``(sending tile, neighbor)``.
        """
        raise NotImplementedError

    def decisions(
        self,
        packet: "Packet",
        neighbors: tuple[int, ...],
        rng: np.random.Generator,
        *,
        tile_id: int,
        round_index: int,
        buffer_occupancy: int = 0,
        buffer_capacity: int | None = None,
    ) -> list[ForwardDecision]:
        """Per-port decisions for one packet (the engine entry point).

        The default builds one :class:`PolicyContext` and asks
        :meth:`decide` per port; override for vectorised rules.  RND
        draws must come from `rng` in port order so results stay
        reproducible for a given seed.
        """
        ctx = PolicyContext(
            tile_id=tile_id,
            round_index=round_index,
            rng=rng,
            neighbors=neighbors,
            buffer_occupancy=buffer_occupancy,
            buffer_capacity=buffer_capacity,
        )
        return [
            ForwardDecision(
                port, neighbor, self.decide(packet, (tile_id, neighbor), ctx)
            )
            for port, neighbor in enumerate(neighbors)
        ]

    def decide_batch(self, batch: BatchDecisionView) -> np.ndarray | None:
        """Per-row forwarding probabilities for a whole send phase.

        The vectorised entry point used by the fast engine backend.  A
        policy that can express its rule as "row i transmits on each of
        its ports independently with probability ``p[i]``" returns that
        float array (one entry per batch row); the engine then draws the
        per-port coins itself with the exact stream discipline of
        :meth:`decisions` — no draw for ``p[i] >= 1`` (deterministic
        transmit) or ``p[i] == 0`` (silenced), one ``rng.random(n_ports)``
        block in row order otherwise.

        Deterministic policies may instead return a 2-D float matrix of
        shape ``(len(batch), batch.max_degree)`` whose entries are
        exactly 0.0 or 1.0 — per-row, per-port decisions with no coin
        flips (ports past a tile's degree are ignored).  The engine
        rejects fractional matrix entries loudly; per-port *probabilities*
        have no draw-order-preserving vectorised form.

        Returning None (the default) means "no vectorised form": the
        engine falls back to calling :meth:`decisions` per row, so every
        policy keeps working on every backend.
        """
        del batch
        return None

    def on_duplicates_batch(
        self,
        tile_ids: np.ndarray,
        sources: np.ndarray,
        message_ids: np.ndarray,
        round_index: int,
    ) -> bool:
        """Vectorised form of :meth:`on_duplicate_received`.

        The fast backend reports one receive phase's suppressed intact
        duplicates as parallel arrays (processing order preserved).
        Return True when handled; the default returns False, telling the
        engine to replay the events through
        :meth:`on_duplicate_received` one by one.
        """
        del tile_ids, sources, message_ids, round_index
        return False

    def expected_copies_per_round(self, degree: int) -> float:
        """Mean link transmissions one buffered packet causes per round."""
        return float(degree)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.spec.as_dict()!r})"


class LegacyProtocolPolicy(ForwardingPolicy):
    """Adapter mounting a pre-policy protocol object on the policy API.

    Wraps anything with the historical
    :meth:`repro.core.protocol.StochasticProtocol.decide` signature
    (``decide(packet, neighbors, rng, tile_id=...)``) — including
    :class:`repro.noc.routing.XYRoutingProtocol` — and delegates the batch
    :meth:`decisions` call to it verbatim, so legacy configurations run
    *bit-identically* to the pre-policy engine: same calls, same RNG
    stream, same numbers.

    The adapter is an engine-internal shim: it has no registry `kind` and
    no spec; configs keep storing the wrapped protocol object itself.
    """

    def __init__(self, protocol: StochasticProtocol) -> None:
        self.protocol = protocol

    @property
    def spec(self) -> PolicySpec:
        raise TypeError(
            "legacy protocol objects have no PolicySpec; store the protocol "
            "itself in SimConfig (its describer already feeds the cache key)"
        )

    @property
    def name(self) -> str:
        return getattr(self.protocol, "name", type(self.protocol).__name__)

    @property
    def is_deterministic(self) -> bool:
        return bool(getattr(self.protocol, "is_deterministic", False))

    def decide(
        self, packet: "Packet", link: tuple[int, int], ctx: PolicyContext
    ) -> bool:
        src, dst = link
        return self.protocol.decide(packet, (dst,), ctx.rng, tile_id=src)[
            0
        ].transmit

    def decisions(
        self,
        packet: "Packet",
        neighbors: tuple[int, ...],
        rng: np.random.Generator,
        *,
        tile_id: int,
        round_index: int,
        buffer_occupancy: int = 0,
        buffer_capacity: int | None = None,
    ) -> list[ForwardDecision]:
        return self.protocol.decide(packet, neighbors, rng, tile_id=tile_id)

    def decide_batch(self, batch: BatchDecisionView) -> np.ndarray | None:
        # Only when the wrapped object demonstrably IS the memoryless
        # Bernoulli rule (no decide override anywhere in its MRO) can the
        # batch form reproduce it: constant p per row, same draw pattern
        # as StochasticProtocol.decide.  Anything else — XY routing,
        # custom protocols — keeps the verbatim per-packet delegation.
        protocol = self.protocol
        if (
            isinstance(protocol, StochasticProtocol)
            and type(protocol).decide is StochasticProtocol.decide
        ):
            return np.full(len(batch), float(protocol.forward_probability))
        return None

    def expected_copies_per_round(self, degree: int) -> float:
        return self.protocol.expected_copies_per_round(degree)


# ------------------------------------------------------------------ registry

#: kind -> policy class; populated by :func:`register_policy` decorators.
POLICY_REGISTRY: dict[str, type[ForwardingPolicy]] = {}


def register_policy(cls: type[ForwardingPolicy]) -> type[ForwardingPolicy]:
    """Class decorator adding `cls` to :data:`POLICY_REGISTRY` by kind."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must set a non-empty `kind`")
    existing = POLICY_REGISTRY.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"policy kind {cls.kind!r} already registered by "
            f"{existing.__name__}"
        )
    POLICY_REGISTRY[cls.kind] = cls
    return cls


def build_policy(spec: PolicySpec) -> ForwardingPolicy:
    """Instantiate a fresh policy from a spec (loud on unknown kinds)."""
    if not isinstance(spec, PolicySpec):
        raise TypeError(f"build_policy expects a PolicySpec, got {spec!r}")
    try:
        cls = POLICY_REGISTRY[spec.kind]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY)) or "<none>"
        raise ValueError(
            f"unknown policy kind {spec.kind!r}; registered kinds: {known}"
        ) from None
    return cls(**spec.as_dict())


def make_policy(kind: str, **params: Any) -> ForwardingPolicy:
    """Convenience: ``build_policy(PolicySpec.of(kind, **params))``."""
    return build_policy(PolicySpec.of(kind, **params))
