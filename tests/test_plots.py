"""Tests for the ASCII chart renderers."""

import pytest

from repro.experiments.plots import bar_chart, line_chart, sparkline


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["alpha", "b"], [2.0, 4.0], width=8)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("alpha | ####")
        assert "########" in lines[1]

    def test_zero_values_draw_nothing(self):
        chart = bar_chart(["x", "y"], [0.0, 1.0], width=4)
        first = chart.splitlines()[0]
        assert "#" not in first

    def test_title_and_unit(self):
        chart = bar_chart(["x"], [1.0], title="T", unit=" J")
        assert chart.startswith("T\n")
        assert chart.endswith("1 J")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestLineChart:
    def test_contains_all_points(self):
        chart = line_chart([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=8)
        assert chart.count("*") >= 3  # distinct grid cells

    def test_monotone_series_descends_across_rows(self):
        chart = line_chart([0, 1], [0, 10], width=10, height=5)
        rows = [line for line in chart.splitlines() if line.startswith("    |")]
        top_star = next(i for i, row in enumerate(rows) if "*" in row)
        bottom_star = max(i for i, row in enumerate(rows) if "*" in row)
        assert top_star < bottom_star

    def test_flat_series_renders(self):
        chart = line_chart([0, 1, 2], [5, 5, 5], width=10, height=4)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([0], [0])
        with pytest.raises(ValueError):
            line_chart([0, 1], [0])
        with pytest.raises(ValueError):
            line_chart([0, 1], [0, 1], width=1)


class TestSparkline:
    def test_monotone(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_flat(self):
        assert sparkline([2, 2, 2]) == "▁▁▁"

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_real_series(self):
        from repro.core.theory import deterministic_spread

        curve = deterministic_spread(1000, 18)
        art = sparkline(curve)
        assert len(art) == 19
        assert art[0] == "▁" and art[-1] == "█"
