"""Fig 5-3: on-chip diversity — comparing communication architectures.

The beamforming workload runs on the flat NoC, the hierarchical NoC and
the bus-connected NoCs (plus the central router, which Fig 5-2 sketches
but Fig 5-3 omits).  Expected shape per the thesis: the hierarchical NoC
has the lowest number of message transmissions, the flat NoC a slightly
better latency than the others, and the bus-connected structure is the
least efficient.
"""

from __future__ import annotations

from typing import Any

from repro.diversity.architectures import (
    BusConnectedNocs,
    CentralRouter,
    FlatNoc,
    HierarchicalNoc,
)
from repro.diversity.compare import ArchitectureComparison, compare_architectures
from repro.experiments.common import (
    UNSET,
    ExperimentOptions,
    resolve_options,
)


def run(
    cluster_side: int = 3,
    n_sensors: int = 12,
    n_frames: int = 6,
    frame_interval: int = 3,
    repetitions: int = 3,
    include_central_router: bool = False,
    seed: int = 0,
    max_rounds: int = 4000,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> list[ArchitectureComparison]:
    """Run the Fig 5-3 comparison.

    The flat mesh is sized to match the clustered architectures' tile
    count (2 x cluster_side per side = 4 clusters' worth of tiles).
    """
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    architectures = [
        FlatNoc(2 * cluster_side),
        HierarchicalNoc(cluster_side),
        BusConnectedNocs(cluster_side),
    ]
    if include_central_router:
        architectures.append(CentralRouter(cluster_side))
    return compare_architectures(
        architectures,
        n_sensors=n_sensors,
        n_frames=n_frames,
        frame_interval=frame_interval,
        repetitions=repetitions,
        seed=seed,
        max_rounds=max_rounds,
        options=opts,
    )
