"""Tests for MP3 pipeline stage duplication (§4.1.1 applied to Fig 4-7)."""

import pytest

from repro.apps import run_on_noc
from repro.core.protocol import StochasticProtocol
from repro.faults import CrashPlan
from repro.mp3 import Mp3Encoder, ParallelMp3App
from repro.noc import Mesh2D, NocSimulator

PRIMARIES = (0, 1, 2, 3, 7)
REPLICAS = (8, 9, 12, 13, 14)


def _duplicated_app(n_frames=4, skip_after=40, seed=0):
    return ParallelMp3App(
        n_frames=n_frames,
        granule=144,
        stage_tiles=PRIMARIES,
        replica_tiles=REPLICAS,
        skip_after=skip_after,
        seed=seed,
    )


class TestFaultFree:
    def test_matches_serial_encoder(self):
        app = _duplicated_app()
        sim = NocSimulator(Mesh2D(4, 4), StochasticProtocol(0.7), seed=5)
        run_on_noc(app, sim, max_rounds=400)
        serial = Mp3Encoder(128_000, granule=144).encode(app.source)
        frames = app.collected_frames()
        assert len(frames) == 4
        for frame in serial:
            assert frames[frame.frame_index].to_bytes() == frame.to_bytes()

    def test_replicas_add_no_unique_messages(self):
        counts = {}
        for replica_tiles in (None, REPLICAS):
            app = ParallelMp3App(
                n_frames=3,
                granule=144,
                stage_tiles=PRIMARIES,
                replica_tiles=replica_tiles,
            )
            sim = NocSimulator(
                Mesh2D(4, 4), StochasticProtocol(0.6), seed=6
            )
            run_on_noc(app, sim, max_rounds=400)
            counts[replica_tiles is not None] = (
                sim.stats.unique_messages_created
            )
        # 3 granules x 4 producing stages, with or without replicas.
        assert counts[True] == counts[False] == 12


class TestCrashSurvival:
    def test_survives_all_primary_crashes(self):
        mesh = Mesh2D(4, 4)
        assert mesh.is_connected(excluding=frozenset(PRIMARIES))
        app = _duplicated_app(n_frames=5)
        sim = NocSimulator(
            mesh,
            StochasticProtocol(0.6),
            seed=2,
            default_ttl=20,
            crash_plan=CrashPlan(dead_tiles=frozenset(PRIMARIES)),
        )
        result = run_on_noc(app, sim, max_rounds=800)
        assert result.completed
        report = app.report()
        assert report.encoding_complete
        assert report.frames_received == 5

    def test_survives_mixed_replica_crashes(self):
        # One dead tile per stage, alternating replica/primary, chosen so
        # the survivors stay connected.
        dead = frozenset(
            {REPLICAS[0], PRIMARIES[1], REPLICAS[2], PRIMARIES[3], REPLICAS[4]}
        )
        mesh = Mesh2D(4, 4)
        assert mesh.is_connected(excluding=dead)
        app = _duplicated_app(n_frames=4)
        sim = NocSimulator(
            mesh,
            StochasticProtocol(0.6),
            seed=3,
            default_ttl=20,
            crash_plan=CrashPlan(dead_tiles=dead),
        )
        result = run_on_noc(app, sim, max_rounds=800)
        assert result.completed
        assert app.report().encoding_complete

    def test_unduplicated_dies_with_a_stage(self):
        app = ParallelMp3App(
            n_frames=4, granule=144, stage_tiles=PRIMARIES
        )
        sim = NocSimulator(
            Mesh2D(4, 4),
            StochasticProtocol(0.6),
            seed=4,
            crash_plan=CrashPlan(dead_tiles=frozenset({PRIMARIES[2]})),
        )
        run_on_noc(app, sim, max_rounds=600)
        assert not app.report().encoding_complete


class TestValidation:
    def test_overlapping_replicas_rejected(self):
        with pytest.raises(ValueError, match="ten distinct"):
            ParallelMp3App(
                stage_tiles=PRIMARIES,
                replica_tiles=(PRIMARIES[0], 9, 12, 13, 14),
            )
