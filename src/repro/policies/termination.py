"""Feedback termination: the duplicate-counting stopping rule.

Randomized rumor spreading has no natural "stop" — a Bernoulli gossiper
re-offers every buffered packet to the RND circuits forever, so the
paper's energy metric depends on an arbitrary round budget.  The
rumor-spreading literature's fix (Karp et al.'s median-counter rule;
Doerr et al., arXiv:1209.6158) is *feedback termination*: every intact
duplicate copy a tile receives is an acknowledgement that its
neighborhood already knows the message, and after ``k`` such
acknowledgements the tile writes the rumor's death certificate and falls
silent.

:class:`FeedbackTermination` packages that rule as a reusable component:
:class:`repro.policies.counter.CounterGossipPolicy` composes it with
Bernoulli pushing, and :class:`repro.policies.pushpull.PushPullPolicy`
composes it (via ``feedback_k``) with push–pull rounds.  It is not a
:class:`~repro.policies.base.ForwardingPolicy` itself — it only counts
duplicates and answers silencing queries; the owning policy decides what
"silenced" means for its traffic (push–pull tiles, for example, stop
*pushing* but still answer pull requests).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

#: A packet identity: ``(source tile, message id)``.
Key = tuple[int, int]


class FeedbackTermination:
    """Count duplicate acknowledgements; silence ``(tile, key)`` after k.

    Args:
        k: intact duplicate receptions after which a tile is silenced
            for a message (k = 1: the first echo silences it; larger k
            trades extra redundancy for fault tolerance).
    """

    __slots__ = ("k", "_duplicates")

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        #: (tile_id, packet key) -> intact duplicate copies received.
        self._duplicates: dict[tuple[int, Key], int] = defaultdict(int)

    # ------------------------------------------------------------ observing

    def reset(self) -> None:
        """Clear all per-run duplicate counts."""
        self._duplicates.clear()

    def observe(self, tile_id: int, key: Key) -> None:
        """`tile_id` received (and suppressed) an intact duplicate."""
        self._duplicates[(tile_id, key)] += 1

    def observe_batch(
        self,
        tile_ids: np.ndarray,
        sources: np.ndarray,
        message_ids: np.ndarray,
    ) -> None:
        """Vectorised :meth:`observe` (fast-backend receive phase)."""
        duplicates = self._duplicates
        for tile_id, source, message_id in zip(
            tile_ids.tolist(), sources.tolist(), message_ids.tolist()
        ):
            duplicates[(tile_id, (source, message_id))] += 1

    # ------------------------------------------------------------- querying

    def duplicates_seen(self, tile_id: int, key: Key) -> int:
        """Intact duplicate copies of `key` received at `tile_id` so far."""
        return self._duplicates.get((tile_id, key), 0)

    def is_silenced(self, tile_id: int, key: Key) -> bool:
        """Has `tile_id` written the death certificate for `key`?"""
        return self.duplicates_seen(tile_id, key) >= self.k

    def any_observed(self) -> bool:
        """Fast-path guard: has any duplicate been observed at all?"""
        return bool(self._duplicates)

    def silenced_rows(
        self,
        tile_ids: np.ndarray,
        sources: np.ndarray,
        message_ids: np.ndarray,
    ) -> list[int]:
        """Row indices (into the parallel arrays) that are silenced."""
        if not self._duplicates:
            return []
        get = self._duplicates.get
        k = self.k
        return [
            row
            for row, (tile_id, source, message_id) in enumerate(
                zip(
                    tile_ids.tolist(),
                    sources.tolist(),
                    message_ids.tolist(),
                )
            )
            if get((tile_id, (source, message_id)), 0) >= k
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeedbackTermination(k={self.k}, "
            f"tracked={len(self._duplicates)})"
        )
