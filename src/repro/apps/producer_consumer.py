"""The Producer - Consumer example of thesis §3.2.1.

A producer streams numbered messages to a consumer elsewhere on the grid.
The example demonstrates the two signature properties of stochastic
communication: the producer never needs the consumer's location, and the
message typically reaches the consumer *before* the broadcast saturates the
whole network (Fig 3-3: tiles 13-16 still uninformed when tile 12 already
has the packet).
"""

from __future__ import annotations

import struct

from repro.apps.base import Application, Placement
from repro.core.packet import Packet
from repro.noc.tile import IPCore, TileContext

#: Payload layout: sequence number + a fixed data block.
_ITEM = struct.Struct(">i")


class ProducerCore(IPCore):
    """Emits `n_items` messages, one per round, toward the consumer tile."""

    def __init__(
        self, consumer_tile: int, n_items: int = 1, item_bytes: int = 32
    ) -> None:
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items}")
        if item_bytes < _ITEM.size:
            raise ValueError(
                f"item_bytes must be >= {_ITEM.size}, got {item_bytes}"
            )
        self.consumer_tile = consumer_tile
        self.n_items = n_items
        self.item_bytes = item_bytes
        self.items_sent = 0

    def _payload(self, sequence: int) -> bytes:
        body = _ITEM.pack(sequence)
        return body + b"\x00" * (self.item_bytes - len(body))

    def on_round(self, ctx: TileContext) -> None:
        if self.items_sent < self.n_items:
            ctx.send(self.consumer_tile, self._payload(self.items_sent))
            self.items_sent += 1

    @property
    def complete(self) -> bool:
        return self.items_sent >= self.n_items


class ConsumerCore(IPCore):
    """Collects the stream; tracks per-item arrival rounds for latency."""

    def __init__(self, n_items: int = 1) -> None:
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items}")
        self.n_items = n_items
        #: sequence number -> round at which the first copy arrived.
        self.arrival_rounds: dict[int, int] = {}

    def on_receive(self, ctx: TileContext, packet: Packet) -> None:
        (sequence,) = _ITEM.unpack(packet.payload[: _ITEM.size])
        if sequence not in self.arrival_rounds:
            self.arrival_rounds[sequence] = ctx.round_index

    @property
    def items_received(self) -> int:
        return len(self.arrival_rounds)

    @property
    def complete(self) -> bool:
        return self.items_received >= self.n_items

    def per_item_latency(self) -> dict[int, int]:
        """sequence -> (arrival round - emission round).

        The producer emits item *k* in round *k*, so the per-item latency
        is simply ``arrival_round - k``.
        """
        return {
            seq: arrival - seq for seq, arrival in self.arrival_rounds.items()
        }


class ProducerConsumerApp(Application):
    """Producer on one tile, consumer on another (Fig 3-3 uses 6 -> 12).

    Args:
        producer_tile / consumer_tile: placements on the grid.
        n_items: length of the stream.
        item_bytes: payload size per item.
    """

    def __init__(
        self,
        producer_tile: int = 5,
        consumer_tile: int = 11,
        n_items: int = 1,
        item_bytes: int = 32,
    ) -> None:
        if producer_tile == consumer_tile:
            raise ValueError("producer and consumer must be distinct tiles")
        self.producer = ProducerCore(consumer_tile, n_items, item_bytes)
        self.consumer = ConsumerCore(n_items)
        self.producer_tile = producer_tile
        self.consumer_tile = consumer_tile

    def placements(self) -> list[Placement]:
        return [
            Placement(self.producer_tile, self.producer),
            Placement(self.consumer_tile, self.consumer),
        ]
