"""Property-based backend equivalence (satellite of the SoA backend PR).

Where ``test_backends_equivalence.py`` pins a curated golden grid, this
module lets Hypothesis *search* the configuration space for a divergence:
random topologies, forwarding policies, fault probabilities, buffer
shapes and mid-run crash schedules, each run through both engine
backends and compared field-for-field.

A shrunk counterexample from this test is the fastest possible bug
report against the fast backend's stream discipline — Hypothesis will
minimise it to the smallest (topology, faults, schedule) that still
diverges.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.packet import BROADCAST  # noqa: E402
from repro.core.protocol import StochasticProtocol  # noqa: E402
from repro.faults import FaultConfig  # noqa: E402
from repro.metrics import MetricsCollector  # noqa: E402
from repro.noc import Mesh2D, NocSimulator, SimConfig, Torus2D  # noqa: E402
from repro.noc.tile import IPCore, TileContext  # noqa: E402
from repro.noc.topology import FullyConnected, RingTopology  # noqa: E402
from repro.policies import PolicySpec  # noqa: E402

MAX_ROUNDS = 40


class _Seed(IPCore):
    def on_start(self, ctx: TileContext) -> None:
        ctx.send(BROADCAST, b"rumor")


def _topologies() -> st.SearchStrategy:
    return st.one_of(
        st.tuples(st.integers(2, 4), st.integers(2, 4)).map(
            lambda rc: Mesh2D(*rc)
        ),
        st.tuples(st.integers(3, 4), st.integers(3, 4)).map(
            lambda rc: Torus2D(*rc)
        ),
        st.integers(4, 10).map(RingTopology),
        st.integers(3, 8).map(FullyConnected),
    )


def _protocols() -> st.SearchStrategy:
    p = st.sampled_from([0.3, 0.5, 0.7, 1.0])
    return st.one_of(
        p.map(StochasticProtocol),
        p.map(lambda v: PolicySpec("bernoulli", {"forward_probability": v})),
        st.just(PolicySpec("flood", {})),
        p.map(lambda v: PolicySpec("counter", {"k": 2, "forward_probability": v})),
        st.just(PolicySpec("adaptive", {"p_base": 0.6})),
    )


def _fault_configs() -> st.SearchStrategy:
    prob = st.sampled_from([0.0, 0.05, 0.2])
    return st.builds(
        FaultConfig,
        p_tile=prob,
        p_link=prob,
        p_upset=prob,
        p_overflow=prob,
    )


@st.composite
def _cells(draw) -> dict:
    topology = draw(_topologies())
    n = topology.n_tiles
    # Mid-run crash schedule: a handful of (round, tile) and (round, link)
    # events, drawn against this topology's tiles and directed links.
    tile_crashes = draw(
        st.lists(
            st.tuples(st.integers(1, 6), st.integers(0, n - 1)),
            max_size=2,
        )
    )
    links = sorted(topology.links)
    link_crashes = draw(
        st.lists(
            st.tuples(st.integers(1, 6), st.sampled_from(links)),
            max_size=2,
        )
    )
    return {
        "topology": topology,
        "protocol": draw(_protocols()),
        "fault": draw(_fault_configs()),
        "buffer_capacity": draw(st.sampled_from([None, 2, 4])),
        "buffer_mode": draw(st.sampled_from(["retain", "relay"])),
        "seed": draw(st.integers(0, 2**16)),
        "tile_crashes": tile_crashes,
        "link_crashes": link_crashes,
    }


def _run_one(backend: str, cell: dict):
    cfg = SimConfig(
        topology=cell["topology"],
        protocol=cell["protocol"],
        fault_config=cell["fault"],
        buffer_capacity=cell["buffer_capacity"],
        buffer_mode=cell["buffer_mode"],
        backend=backend,
    )
    collector = MetricsCollector()
    sim = NocSimulator.from_config(cfg, seed=cell["seed"], observer=collector)
    sim.mount(0, _Seed())
    for round_index, tile_id in cell["tile_crashes"]:
        sim.schedule_tile_crash(round_index, tile_id)
    for round_index, link in cell["link_crashes"]:
        sim.schedule_link_crash(round_index, link)
    result = sim.run(
        MAX_ROUNDS,
        until=lambda s: len(s.informed_tiles()) == s.topology.n_tiles,
    )
    return result, collector.metrics(), frozenset(sim.informed_tiles())


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cell=_cells())
def test_backends_agree_on_random_configs(cell: dict) -> None:
    result_o, metrics_o, informed_o = _run_one("object", cell)
    result_f, metrics_f, informed_f = _run_one("fast", cell)
    for field in fields(result_o.stats):
        assert getattr(result_o.stats, field.name) == getattr(
            result_f.stats, field.name
        ), f"stats.{field.name} diverged"
    assert result_o == result_f
    for field in fields(metrics_o):
        assert getattr(metrics_o, field.name) == getattr(
            metrics_f, field.name
        ), f"metrics.{field.name} diverged"
    assert metrics_o == metrics_f
    assert informed_o == informed_f
