"""repro — a reproduction of "On-Chip Stochastic Communication".

Dumitras & Marculescu (DATE 2003; CMU MS thesis, May 2003) propose a
gossip-based, probabilistically-flooding communication paradigm for
networks-on-chip that tolerates the stochastic failures of deep-submicron
silicon — data upsets, buffer overflows, synchronization errors, and the
occasional crashed tile — without retransmission protocols.

Quick start::

    from repro import (
        Mesh2D, NocSimulator, StochasticProtocol, FaultConfig,
    )
    from repro.apps import ProducerConsumerApp, run_on_noc

    app = ProducerConsumerApp(producer_tile=5, consumer_tile=11)
    sim = NocSimulator(
        Mesh2D(4, 4), StochasticProtocol(0.5),
        FaultConfig(p_upset=0.3), seed=42,
    )
    result = run_on_noc(app, sim)
    print(result.rounds, result.energy_j)

Package map:

* :mod:`repro.core` — the protocol (packets, gossip, flooding, theory);
* :mod:`repro.noc` — the NoC substrate (topologies, tiles, links, clocks,
  round-stepped engine);
* :mod:`repro.faults` — the Ch. 2 failure model and fault injection;
* :mod:`repro.crc` — the error-detection substrate;
* :mod:`repro.bus` — the shared-bus baseline;
* :mod:`repro.energy` — Eq. 2 / Eq. 3 metrics and technology constants;
* :mod:`repro.apps` — Producer-Consumer, Master-Slave pi, 2-D FFT,
  beamforming;
* :mod:`repro.mp3` — the perceptual audio encoder workload (Fig 4-7);
* :mod:`repro.diversity` — on-chip diversity architectures (Ch. 5);
* :mod:`repro.experiments` — one harness per thesis figure.
"""

from repro.core.packet import BROADCAST, Packet, PacketFactory
from repro.core.protocol import FloodingProtocol, StochasticProtocol
from repro.faults import CrashPlan, FaultConfig, FaultInjector
from repro.noc.config import SimConfig
from repro.noc.engine import NocSimulator, SimulationResult
from repro.noc.tile import IPCore, Tile
from repro.noc.topology import (
    FullyConnected,
    Mesh2D,
    RingTopology,
    StarTopology,
    Torus2D,
)

__version__ = "1.0.0"

__all__ = [
    "BROADCAST",
    "Packet",
    "PacketFactory",
    "StochasticProtocol",
    "FloodingProtocol",
    "FaultConfig",
    "FaultInjector",
    "CrashPlan",
    "NocSimulator",
    "SimConfig",
    "SimulationResult",
    "IPCore",
    "Tile",
    "Mesh2D",
    "Torus2D",
    "FullyConnected",
    "RingTopology",
    "StarTopology",
    "__version__",
]
