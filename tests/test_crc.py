"""Tests for the CRC substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc import CRC, CRC8, CRC16_CCITT, CRC32, CrcSpec, crc_for
from repro.crc.engine import _reflect


ALL_CODECS = [CRC8, CRC16_CCITT, CRC32]


class TestCatalogueVectors:
    def test_crc8_check_value(self):
        assert CRC8.compute(b"123456789") == 0xF4

    def test_crc16_ccitt_check_value(self):
        assert CRC16_CCITT.compute(b"123456789") == 0x29B1

    def test_crc32_check_value(self):
        assert CRC32.compute(b"123456789") == 0xCBF43926

    def test_crc32_known_strings(self):
        # Standard IEEE 802.3 values.
        assert CRC32.compute(b"") == 0x00000000
        assert CRC32.compute(b"a") == 0xE8B7BE43
        assert CRC32.compute(b"abc") == 0x352441C2

    def test_lookup_by_name(self):
        assert crc_for("CRC-32").width == 32
        assert crc_for("CRC-8").width == 8

    def test_lookup_unknown_name(self):
        with pytest.raises(KeyError, match="unknown CRC"):
            crc_for("CRC-7/NOPE")


class TestSpecValidation:
    def test_rejects_narrow_width(self):
        with pytest.raises(ValueError, match="width"):
            CrcSpec("bad", 4, 0x3, 0, False, False, 0, 0)

    def test_rejects_non_byte_width(self):
        with pytest.raises(ValueError, match="width"):
            CrcSpec("bad", 12, 0x80F, 0, False, False, 0, 0)

    def test_rejects_oversized_polynomial(self):
        with pytest.raises(ValueError, match="polynomial"):
            CrcSpec("bad", 8, 0x1FF, 0, False, False, 0, 0)

    def test_rejects_wrong_check_value(self):
        spec = CrcSpec("bad-check", 8, 0x07, 0x00, False, False, 0x00, 0x00)
        with pytest.raises(ValueError, match="self-test failed"):
            CRC(spec)


class TestEncodeCheck:
    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.spec.name)
    def test_roundtrip(self, codec):
        data = b"the quick brown fox"
        codeword = codec.encode(data)
        assert codec.check(codeword)
        assert codec.extract(codeword) == data

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.spec.name)
    def test_codeword_length(self, codec):
        assert len(codec.encode(b"xyz")) == 3 + codec.n_check_bytes

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.spec.name)
    def test_single_bit_flip_detected_everywhere(self, codec):
        codeword = bytearray(codec.encode(b"payload!"))
        for byte_index in range(len(codeword)):
            for bit in range(8):
                corrupted = bytearray(codeword)
                corrupted[byte_index] ^= 1 << bit
                assert not codec.check(bytes(corrupted)), (
                    f"bit {bit} of byte {byte_index} escaped"
                )

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.spec.name)
    def test_burst_errors_shorter_than_width_detected(self, codec):
        codeword = codec.encode(b"burst error test payload")
        width = codec.width
        for start_bit in range(0, 8 * len(codeword) - width, 7):
            corrupted = bytearray(codeword)
            for offset in range(width):
                bit = start_bit + offset
                corrupted[bit // 8] ^= 1 << (7 - bit % 8)
            assert not codec.check(bytes(corrupted))

    def test_truncated_codeword_fails(self):
        assert not CRC32.check(b"\x01")
        assert not CRC32.check(b"")

    def test_extract_raises_on_corruption(self):
        codeword = bytearray(CRC16_CCITT.encode(b"data"))
        codeword[0] ^= 0xFF
        with pytest.raises(ValueError, match="corrupt"):
            CRC16_CCITT.extract(bytes(codeword))

    def test_random_scramble_escape_rate_matches_width(self):
        # A uniformly random scramble escapes with probability ~2^-16 for
        # CRC-16; over 3000 trials we should see (almost surely) zero.
        rng = np.random.default_rng(7)
        data = b"0123456789abcdef"
        escapes = 0
        for _ in range(3000):
            scrambled = rng.integers(
                0, 256, size=len(data) + 2, dtype=np.uint8
            ).tobytes()
            if CRC16_CCITT.check(scrambled):
                escapes += 1
        assert escapes <= 2


class TestReflection:
    def test_reflect_involution(self):
        for value in (0, 1, 0xA5, 0xFFFF, 0x12345678):
            assert _reflect(_reflect(value, 32), 32) == value

    def test_reflect_known(self):
        assert _reflect(0b0001, 4) == 0b1000
        assert _reflect(0x01, 8) == 0x80


@given(data=st.binary(min_size=0, max_size=256))
@settings(max_examples=100, deadline=None)
def test_property_roundtrip_crc32(data):
    assert CRC32.extract(CRC32.encode(data)) == data


@given(
    data=st.binary(min_size=1, max_size=64),
    bit=st.integers(min_value=0, max_value=8 * 64 + 31),
)
@settings(max_examples=150, deadline=None)
def test_property_any_single_flip_detected(data, bit):
    codeword = bytearray(CRC32.encode(data))
    bit %= 8 * len(codeword)
    codeword[bit // 8] ^= 1 << (bit % 8)
    assert not CRC32.check(bytes(codeword))


@given(data=st.binary(min_size=0, max_size=128))
@settings(max_examples=100, deadline=None)
def test_property_compute_deterministic(data):
    assert CRC16_CCITT.compute(data) == CRC16_CCITT.compute(data)
