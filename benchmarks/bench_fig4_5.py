"""Benchmark E4: Fig 4-5 — latency surface over (crashes x upsets)."""

from repro.experiments import fig4_5


def test_fig4_5_latency_surface(benchmark, shape_report):
    points = benchmark(
        fig4_5.run,
        dead_tile_counts=(0, 2),
        upset_levels=(0.0, 0.5, 0.9),
        repetitions=2,
        max_rounds=2500,
    )
    grid = {(pt.n_dead_tiles, pt.p_upset): pt for pt in points}
    # Upsets dominate the surface: latency at 90 % upsets far exceeds the
    # crash axis's effect (thesis: "data upsets increase the latency
    # considerably" while tile failures barely move it).
    clean = grid[(0, 0.0)].latency_rounds
    heavy_upsets = grid[(0, 0.9)].latency_rounds
    crashed = grid[(2, 0.0)].latency_rounds
    assert heavy_upsets > 3 * clean
    assert crashed < 3 * clean
    # The algorithm "does not give up": even at 90 % it terminates.
    assert grid[(0, 0.9)].completion_rate > 0.0
    shape_report["fig4_5"] = {
        "clean": round(clean, 1),
        "upset90": round(heavy_upsets, 1),
        "crashed2": round(crashed, 1),
    }
