"""Benchmark E7: Fig 4-9 — MP3 energy dissipation vs p (near-linear)."""

import numpy as np

from repro.experiments import fig4_9


def test_fig4_9_energy_linear_in_p(benchmark, shape_report):
    points = benchmark(
        fig4_9.run,
        probabilities=(0.1, 0.25, 0.5, 0.75, 1.0),
        n_frames=5,
        granule=144,
        repetitions=2,
    )
    probabilities = np.array([pt.forward_probability for pt in points])
    energies = np.array([pt.energy_j for pt in points])
    # Strictly increasing and highly linear (thesis: "increases almost
    # linearly with the probability p").
    assert np.all(np.diff(energies) > 0)
    correlation = np.corrcoef(probabilities, energies)[0, 1]
    assert correlation > 0.97
    # The flip side of the trade-off: latency falls as p rises.
    rounds = np.array([pt.latency_rounds for pt in points])
    assert rounds[0] > rounds[-1]
    shape_report["fig4_9"] = {
        "correlation": round(float(correlation), 3),
        "energy_ratio_p1_vs_p025": round(float(energies[-1] / energies[1]), 2),
    }
