"""Benchmark E1/E12: Fig 3-1 — rumor spreading in a 1000-node network."""

from repro.experiments import fig3_1


def test_fig3_1_spread_curve(benchmark, shape_report):
    curve = benchmark(fig3_1.run, n=1000, repetitions=3, seed=0)
    # Thesis: all 1000 nodes reached in < 20 rounds.
    assert curve.rounds_to_all < 20
    # Simulation tracks the Eq. 1 deterministic approximation.
    for simulated, deterministic in zip(
        curve.simulated[4:12], curve.deterministic[4:12]
    ):
        assert abs(simulated - deterministic) / deterministic < 0.4
    shape_report["fig3_1"] = {
        "rounds_to_all": curve.rounds_to_all,
        "predicted": round(curve.predicted_rounds, 1),
    }


def test_fig3_1_scaling_is_logarithmic(benchmark, shape_report):
    curves = benchmark(
        fig3_1.run_scaling, sizes=(64, 256, 1024), repetitions=2, seed=1
    )
    rounds = [c.rounds_to_all for c in curves]
    # Quadrupling n adds a roughly constant number of rounds (log growth).
    first_jump = rounds[1] - rounds[0]
    second_jump = rounds[2] - rounds[1]
    assert abs(second_jump - first_jump) <= 4
    shape_report["fig3_1_scaling"] = {"rounds": rounds}
