"""Tests for the frozen SimConfig and the config-object simulator API."""

import dataclasses
import pickle

import pytest

from repro.core.packet import BROADCAST
from repro.core.protocol import FloodingProtocol, StochasticProtocol
from repro.faults import CrashPlan, FaultConfig
from repro.noc.config import SimConfig
from repro.noc.engine import NocSimulator
from repro.noc.tile import IPCore
from repro.noc.topology import Mesh2D, Torus2D


class _Broadcaster(IPCore):
    def __init__(self, ttl=30):
        self.ttl = ttl
        self.sent = False

    def on_start(self, ctx):
        ctx.send(BROADCAST, b"rumor", ttl=self.ttl)
        self.sent = True

    @property
    def complete(self):
        return self.sent


def _config(**overrides):
    defaults = dict(
        topology=Mesh2D(4, 4),
        protocol=StochasticProtocol(0.5),
        fault_config=FaultConfig(p_upset=0.1),
        default_ttl=20,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def _broadcast_result(simulator, max_rounds=60):
    simulator.mount(0, _Broadcaster())
    n = simulator.topology.n_tiles
    result = simulator.run(
        max_rounds, until=lambda sim: len(sim.informed_tiles()) == n
    )
    return (
        result.completed,
        result.rounds,
        result.energy_j,
        result.stats.transmissions_delivered,
        result.stats.upsets_detected,
    )


class TestConstruction:
    def test_normalises_none_fault_config(self):
        config = SimConfig(Mesh2D(2, 2), StochasticProtocol(0.5))
        assert config.fault_config == FaultConfig.fault_free()

    def test_normalises_container_fields(self):
        config = SimConfig(
            Mesh2D(2, 2),
            StochasticProtocol(0.5),
            protected_tiles=[0, 1],
            bus_tiles=(3,),
            link_delays=None,
        )
        assert config.protected_tiles == frozenset({0, 1})
        assert config.bus_tiles == frozenset({3})
        assert config.link_delays == {}

    def test_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _config().payload_bits = 1

    def test_with_returns_modified_copy(self):
        config = _config()
        changed = config.with_(payload_bits=64)
        assert changed.payload_bits == 64
        assert config.payload_bits == 512
        assert changed != config

    @pytest.mark.parametrize(
        "overrides, message",
        [
            (dict(buffer_mode="hoard"), "buffer_mode"),
            (dict(buffer_capacity=0), "buffer_capacity"),
            (dict(default_ttl=0), "default_ttl"),
            (dict(nominal_round_s=0.0), "nominal_round_s"),
            (dict(payload_bits=0), "payload_bits"),
            (dict(link_delays={(0, 1): 0}), "link delays"),
            (dict(egress_limits={0: 0}), "egress limits"),
        ],
    )
    def test_validation(self, overrides, message):
        with pytest.raises(ValueError, match=message):
            _config(**overrides)


class TestEqualityAndToken:
    def test_content_equality_across_instances(self):
        assert _config() == _config()
        assert hash(_config()) == hash(_config())

    def test_any_field_change_changes_token(self):
        base = _config()
        for changed in (
            base.with_(topology=Torus2D(4, 4)),
            base.with_(protocol=FloodingProtocol()),
            base.with_(fault_config=FaultConfig(p_upset=0.2)),
            base.with_(default_ttl=21),
            base.with_(buffer_capacity=4),
            base.with_(buffer_mode="relay"),
            base.with_(nominal_round_s=1e-6),
            base.with_(payload_bits=256),
            base.with_(crash_plan=CrashPlan(dead_tiles=frozenset({5}))),
            base.with_(protected_tiles=frozenset({1})),
            base.with_(link_delays={(0, 1): 3}),
            base.with_(link_energy_overrides={(0, 1): 1e-10}),
            base.with_(egress_limits={0: 1}),
            base.with_(bus_tiles=frozenset({2})),
        ):
            assert changed.cache_token() != base.cache_token()
            assert changed != base

    def test_pickle_round_trip_preserves_identity(self):
        config = _config(
            crash_plan=CrashPlan(dead_tiles=frozenset({3})),
            link_delays={(0, 1): 2},
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.cache_token() == config.cache_token()
        assert hash(clone) == hash(config)


class TestSimulatorIntegration:
    def test_kwargs_constructor_exposes_config(self):
        simulator = NocSimulator(
            Mesh2D(3, 3),
            StochasticProtocol(0.5),
            FaultConfig(p_upset=0.05),
            seed=1,
            default_ttl=15,
            payload_bits=128,
        )
        config = simulator.config
        assert isinstance(config, SimConfig)
        assert config.default_ttl == 15
        assert config.payload_bits == 128
        assert config.fault_config == FaultConfig(p_upset=0.05)

    def test_from_config_matches_kwargs_constructor(self):
        kwargs_run = _broadcast_result(
            NocSimulator(
                Mesh2D(4, 4),
                StochasticProtocol(0.5),
                FaultConfig(p_upset=0.1),
                seed=9,
                default_ttl=20,
            )
        )
        config_run = _broadcast_result(
            NocSimulator.from_config(_config(), seed=9)
        )
        assert kwargs_run == config_run

    def test_round_trip_from_extracted_config(self):
        simulator = NocSimulator.from_config(_config(), seed=4)
        replay = NocSimulator.from_config(simulator.config, seed=4)
        assert _broadcast_result(simulator) == _broadcast_result(replay)

    def test_config_survives_pickling_into_identical_run(self):
        config = _config()
        clone = pickle.loads(pickle.dumps(config))
        assert _broadcast_result(
            NocSimulator.from_config(config, seed=2)
        ) == _broadcast_result(NocSimulator.from_config(clone, seed=2))

    def test_from_config_rejects_non_config(self):
        with pytest.raises(TypeError):
            NocSimulator.from_config(Mesh2D(2, 2), seed=0)
