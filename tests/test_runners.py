"""Tests for the parallel sweep runner (repro.runners)."""

import pickle

import pytest

from repro.core.protocol import StochasticProtocol
from repro.core.theory import simulate_rumor_spread
from repro.experiments import fig4_4
from repro.experiments.common import ExperimentOptions
from repro.noc.config import SimConfig
from repro.noc.topology import Mesh2D
from repro.runners import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    SimTask,
    SweepRunner,
    canonical,
    digest,
    spawn_seeds,
)


def _spread_task(n=32, seed=7, **extra):
    return SimTask.call(simulate_rumor_spread, n=n, seed=seed, **extra)


class TestSimTask:
    def test_call_records_qualified_name(self):
        task = _spread_task()
        assert task.fn == "repro.core.theory:simulate_rumor_spread"
        assert task.params == {"n": 32}
        assert task.seed == 7

    def test_execute_matches_direct_call(self):
        assert _spread_task().execute() == simulate_rumor_spread(32, seed=7)

    def test_rejects_nested_functions(self):
        def nested():
            return 0

        with pytest.raises(ValueError, match="module-level"):
            SimTask.call(nested)
        with pytest.raises(ValueError, match="module-level"):
            SimTask.call(lambda: 0)

    def test_cache_key_is_stable_and_label_free(self):
        assert _spread_task().cache_key() == _spread_task().cache_key()
        assert (
            _spread_task(label="a").cache_key()
            == _spread_task(label="b").cache_key()
        )

    def test_cache_key_ignores_param_order(self):
        a = SimTask(fn="m:f", params={"x": 1, "y": 2}, seed=0)
        b = SimTask(fn="m:f", params={"y": 2, "x": 1}, seed=0)
        assert a.cache_key() == b.cache_key()
        assert a == b

    def test_cache_key_distinguishes_fn_params_seed(self):
        base = _spread_task()
        assert base.cache_key() != _spread_task(n=33).cache_key()
        assert base.cache_key() != _spread_task(seed=8).cache_key()
        other = SimTask(fn="m:g", params={"n": 32}, seed=7)
        assert base.cache_key() != other.cache_key()

    def test_task_pickles(self):
        task = _spread_task(label="x")
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.execute() == task.execute()

    def test_missing_function_is_an_error(self):
        with pytest.raises(ValueError, match="not found"):
            SimTask(fn="repro.core.theory:no_such_function").resolve()


class TestCanonicalHashing:
    def test_digest_is_deterministic_across_types(self):
        value = {"b": [1, 2.5, "s"], "a": (None, True)}
        assert digest(value) == digest({"a": (None, True), "b": [1, 2.5, "s"]})

    def test_sets_are_order_insensitive(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_simconfig_canonical_via_cache_token(self):
        config = SimConfig(Mesh2D(3, 3), StochasticProtocol(0.5))
        same = SimConfig(Mesh2D(3, 3), StochasticProtocol(0.5))
        other = SimConfig(Mesh2D(3, 3), StochasticProtocol(0.75))
        assert canonical(config) == canonical(same)
        assert digest(config) != digest(other)

    def test_unhashable_objects_raise(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestSpawnSeeds:
    def test_deterministic_and_prefix_stable(self):
        assert spawn_seeds(42, 6) == spawn_seeds(42, 6)
        assert spawn_seeds(42, 6)[:3] == spawn_seeds(42, 3)

    def test_distinct_per_child_and_base(self):
        seeds = spawn_seeds(42, 8)
        assert len(set(seeds)) == 8
        assert seeds != spawn_seeds(43, 8)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestSweepRunner:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            SweepRunner(n_workers=0)

    def test_results_keep_task_order(self):
        runner = SweepRunner()
        tasks = [_spread_task(n=n, seed=1) for n in (8, 64, 16)]
        results = runner.run(tasks)
        assert [r[-1] for r in results] == [8, 64, 16]

    def test_parallel_matches_serial(self):
        tasks = [_spread_task(n=32, seed=s) for s in range(6)]
        serial = SweepRunner(n_workers=1).run(tasks)
        parallel = SweepRunner(n_workers=4).run(tasks)
        assert serial == parallel

    def test_base_seed_fills_missing_seeds_deterministically(self):
        tasks = [SimTask.call(simulate_rumor_spread, n=32) for _ in range(4)]
        a = SweepRunner(base_seed=5).run(tasks)
        b = SweepRunner(base_seed=5, n_workers=4).run(tasks)
        assert a == b
        assert SweepRunner(base_seed=6).run(tasks) != a

    def test_map_convenience(self):
        runner = SweepRunner()
        curves = runner.map(
            simulate_rumor_spread, [{"n": 16}, {"n": 32}], seeds=[1, 2]
        )
        assert curves == [
            simulate_rumor_spread(16, seed=1),
            simulate_rumor_spread(32, seed=2),
        ]
        with pytest.raises(ValueError, match="seeds"):
            runner.map(simulate_rumor_spread, [{"n": 16}], seeds=[1, 2])


class TestResultCache:
    def test_hit_miss_roundtrip(self, cache_dir):
        cache = ResultCache(cache_dir)
        assert cache.lookup("k") == (False, None)
        cache.put("k", {"value": [1, 2]})
        assert cache.lookup("k") == (True, {"value": [1, 2]})
        assert "k" in cache and len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        cache = ResultCache(cache_dir)
        cache.put("k", 1)
        cache.path_for("k").write_bytes(b"not a pickle")
        assert cache.lookup("k") == (False, None)

    def test_clear(self, cache_dir):
        cache = ResultCache(cache_dir)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0


class TestRunnerCaching:
    def test_warm_cache_executes_nothing(self, cache_dir):
        tasks = [_spread_task(n=24, seed=s) for s in range(5)]
        cold = SweepRunner(cache_dir=cache_dir)
        cold_results = cold.run(tasks)
        assert cold.tasks_executed == 5
        assert cold.cache_hits == 0

        warm = SweepRunner(cache_dir=cache_dir)
        warm_results = warm.run(tasks)
        assert warm.tasks_executed == 0
        assert warm.cache_hits == 5
        assert warm_results == cold_results

    def test_any_simconfig_field_change_misses(self, cache_dir):
        config = SimConfig(Mesh2D(3, 3), StochasticProtocol(0.5))
        task = SimTask(fn="m:f", params={"config": config}, seed=0)
        for changed in (
            config.with_(protocol=StochasticProtocol(0.75)),
            config.with_(topology=Mesh2D(4, 4)),
            config.with_(default_ttl=9),
            config.with_(payload_bits=64),
            config.with_(link_delays={(0, 1): 2}),
        ):
            other = SimTask(fn="m:f", params={"config": changed}, seed=0)
            assert other.cache_key() != task.cache_key()
        # The identical config (rebuilt from scratch) still hits.
        rebuilt = SimConfig(Mesh2D(3, 3), StochasticProtocol(0.5))
        same = SimTask(fn="m:f", params={"config": rebuilt}, seed=0)
        assert same.cache_key() == task.cache_key()

    def test_schema_version_participates_in_key(self):
        task = _spread_task()
        assert repr(CACHE_SCHEMA_VERSION) in repr(
            (CACHE_SCHEMA_VERSION, task.fn, dict(task.params), task.seed)
        )
        # The key is exactly the digest of the versioned tuple.
        assert task.cache_key() == digest(
            (CACHE_SCHEMA_VERSION, task.fn, dict(task.params), task.seed)
        )


class TestExperimentDeterminism:
    def test_fig4_4_parallel_equals_serial(self):
        kwargs = dict(
            dead_tile_counts=(0, 2),
            probabilities=(0.5,),
            repetitions=2,
            max_rounds=200,
        )
        serial = fig4_4.run(**kwargs, options=ExperimentOptions(n_workers=1))
        parallel = fig4_4.run(
            **kwargs, options=ExperimentOptions(n_workers=4)
        )
        assert serial == parallel

    def test_fig4_4_warm_cache_runs_zero_simulations(self, cache_dir):
        kwargs = dict(
            dead_tile_counts=(0,),
            probabilities=(0.5,),
            repetitions=2,
            max_rounds=200,
        )
        cold = SweepRunner(cache_dir=cache_dir)
        first = fig4_4.run(**kwargs, options=ExperimentOptions(runner=cold))
        assert cold.tasks_executed > 0

        warm = SweepRunner(cache_dir=cache_dir)
        second = fig4_4.run(**kwargs, options=ExperimentOptions(runner=warm))
        assert warm.tasks_executed == 0
        assert warm.cache_hits == warm.tasks_submitted > 0
        assert second == first
