"""The matching decoder — used to *measure* quality degradation.

The thesis argues stochastic communication suits streaming multimedia
because losses degrade quality gracefully rather than stalling the stream.
That claim is only checkable with a decoder: reconstruct PCM from the
(possibly gap-ridden) frame sequence and compare against the input.  Lost
frames are concealed as silence granules, which is what costs SNR.
"""

from __future__ import annotations

import numpy as np

from repro.mp3.blockswitch import SwitchedMdct, WindowType
from repro.mp3.encoder import EncodedFrame
from repro.mp3.huffman import SPECTRUM_CODEC, HuffmanCodec
from repro.mp3.pcm import GRANULE
from repro.mp3.psychoacoustic import PsychoacousticModel
from repro.mp3.quantizer import RateLoopQuantizer


class Mp3Decoder:
    """Reconstructs PCM granules from encoded frames.

    Args:
        granule: samples per frame (must match the encoder).
        codec: Huffman codec (must match the encoder).
    """

    def __init__(
        self, granule: int = GRANULE, codec: HuffmanCodec = SPECTRUM_CODEC
    ) -> None:
        self.granule = granule
        self.codec = codec
        # The switched transform is a strict superset: an all-LONG stream
        # reconstructs identically to the plain lapped MDCT.
        self.mdct = SwitchedMdct(granule)
        self.quantizer = RateLoopQuantizer(codec)
        # Band edges are decoder-side metadata shared with the encoder's
        # psychoacoustic configuration.
        self._band_edges = PsychoacousticModel(granule).band_edges

    def decode_frame(self, frame: EncodedFrame) -> np.ndarray:
        """Recover one granule's MDCT spectrum from a frame."""
        values = self.codec.decode(
            frame.payload, frame.n_values, frame.payload_bits
        )
        return self.quantizer.dequantize(
            values, frame.global_gain, frame.scalefactors, self._band_edges
        )

    def decode(
        self, frames: dict[int, EncodedFrame], n_frames: int
    ) -> np.ndarray:
        """Reconstruct the full signal, concealing missing frames.

        Args:
            frames: frame_index -> frame (gaps allowed).
            n_frames: total granules the stream should contain.

        Returns:
            (n_frames, granule) PCM reconstruction.
        """
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        self.mdct.reset()
        spectra: list[tuple[np.ndarray, WindowType]] = []
        for index in range(n_frames):
            frame = frames.get(index)
            if frame is None:
                # Concealment: a zero LONG granule (losing a frame mid-
                # switch degrades the neighbours' aliasing cancellation,
                # exactly as it would in a real decoder).
                spectra.append((np.zeros(self.granule), WindowType.LONG))
            else:
                spectra.append((self.decode_frame(frame), frame.window_type))
        spectra.append((np.zeros(self.granule), WindowType.LONG))  # flush
        outputs = [
            self.mdct.synthesize(coefficients, window_type)
            for coefficients, window_type in spectra
        ]
        return np.stack(outputs[1:])

    def decode_bitstream(self, data: bytes, n_frames: int) -> np.ndarray:
        """Parse a serialised bitstream then decode it.

        Frames are located by walking the (self-describing) frame sizes;
        a malformed region aborts the walk, concealing everything after —
        mirroring a real decoder losing sync.
        """
        frames: dict[int, EncodedFrame] = {}
        offset = 0
        while offset < len(data):
            try:
                frame = EncodedFrame.from_bytes(data[offset:])
            except ValueError:
                break
            frames[frame.frame_index] = frame
            offset += len(frame.to_bytes())
        return self.decode(frames, n_frames)


def reconstruction_snr_db(
    original: np.ndarray, reconstructed: np.ndarray
) -> float:
    """Signal-to-noise ratio of a reconstruction, in dB.

    The first granule is excluded: the lapped transform has no left
    context there, so its loss is structural, not a coding artefact.
    """
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    signal = original[1:] if original.ndim == 2 else original
    noise = (
        original[1:] - reconstructed[1:]
        if original.ndim == 2
        else original - reconstructed
    )
    signal_power = float(np.mean(signal**2))
    noise_power = float(np.mean(noise**2))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_power / noise_power)
