"""Applications mapped onto the NoC (thesis Ch. 3-4).

Each application is a set of IP cores plus a placement; the same IP code
deploys onto a :class:`repro.noc.NocSimulator` or a
:class:`repro.bus.BusSimulator` (the contexts are interface-compatible),
which is how the thesis' bus comparison stays fair.

* :mod:`producer_consumer` — the introductory example of §3.2.1;
* :mod:`master_slave` — parallel computation of pi (Eq. 4, §4.1.1), with
  optional slave duplication for compute fault-tolerance;
* :mod:`fft2d` — the divide-and-conquer 2-D FFT of §4.1.2, with a
  from-scratch radix-2 kernel;
* :mod:`beamforming` — the delay-and-sum acoustic app behind the Ch. 5
  diversity comparison.
"""

from repro.apps.base import Application, Placement, run_on_bus, run_on_noc
from repro.apps.producer_consumer import (
    ConsumerCore,
    ProducerConsumerApp,
    ProducerCore,
)
from repro.apps.master_slave import MasterCore, MasterSlavePiApp, SlaveCore
from repro.apps.fft2d import Fft2dApp, FftRootCore, FftWorkerCore, fft_radix2
from repro.apps.beamforming import BeamformingApp, CollectorCore, SensorCore

__all__ = [
    "Application",
    "Placement",
    "run_on_noc",
    "run_on_bus",
    "ProducerConsumerApp",
    "ProducerCore",
    "ConsumerCore",
    "MasterSlavePiApp",
    "MasterCore",
    "SlaveCore",
    "Fft2dApp",
    "FftRootCore",
    "FftWorkerCore",
    "fft_radix2",
    "BeamformingApp",
    "SensorCore",
    "CollectorCore",
]
