"""Fig 4-6: stochastic NoC vs shared bus, fault-free.

The thesis' headline comparison (§4.1.4): with 0.25 µm constants — links
at 381 MHz / 2.4e-10 J/bit vs a bus at 43 MHz / 21.6e-10 J/bit — the NoC's
latency is ~11x better while its energy is only ~5 % higher, giving an
energy x delay of 7e-12 vs 133e-12 J*s per bit.

Energy accounting matters here.  The thesis' "only 5 % greater" figure is
consistent with counting the energy of the *delivered path* of each
message (average ~9.4 link hops x 2.4e-10 ~= 1.05 x 21.6e-10), not of
every redundant gossip copy.  We therefore report both:

* ``path`` energy — per-useful-bit energy along first-delivery paths (the
  thesis' accounting; expected ratio ~1 vs the bus);
* ``gross`` energy — every transmitted copy (the honest total, which is
  substantially higher and is the true price of the redundancy).

We run the Master-Slave workload on both substrates (same IP code), three
seeded NoC runs plus their average, like the figure's Run1/2/3/Avg bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.base import run_on_bus
from repro.apps.master_slave import MasterSlavePiApp
from repro.bus.simulator import BusModel, BusSimulator
from repro.core.protocol import StochasticProtocol
from repro.energy.model import TECH_025UM, TechnologyLibrary
from repro.experiments.common import (
    UNSET,
    ExperimentOptions,
    resolve_options,
)
from repro.noc.engine import NocSimulator
from repro.noc.link import LinkModel
from repro.noc.topology import Mesh2D
from repro.runners import SimTask


@dataclass(frozen=True)
class BusComparison:
    """The Fig 4-6 table.

    Attributes:
        noc_runs_latency_s: the individual Run 1..n latencies.
        noc_latency_s / bus_latency_s: mean completion times.
        latency_ratio: bus / NoC latency (thesis: ~11x).
        noc_path_energy_per_bit_j: mean delivery-path energy per bit
            (avg hops x link energy/bit — the thesis' accounting).
        noc_gross_energy_per_bit_j: all-copies energy over useful bits.
        bus_energy_per_bit_j: the bus constant (each message crosses once).
        path_energy_ratio: NoC path energy / bus energy (thesis: ~1.05).
        gross_energy_ratio: NoC gross energy / bus energy.
        noc_energy_delay / bus_energy_delay: J*s per bit, path accounting
            (thesis: 7e-12 vs 133e-12).
    """

    noc_runs_latency_s: tuple[float, ...]
    noc_latency_s: float
    bus_latency_s: float
    latency_ratio: float
    noc_path_energy_per_bit_j: float
    noc_gross_energy_per_bit_j: float
    bus_energy_per_bit_j: float
    path_energy_ratio: float
    gross_energy_ratio: float
    noc_energy_delay: float
    bus_energy_delay: float


def _run_noc_once(
    forward_probability: float,
    seed: int,
    n_terms: int,
    default_ttl: int,
    link_frequency_hz: float,
    link_energy_per_bit_j: float,
) -> tuple[float, float, float]:
    """One fault-free NoC run; returns (time_s, mean_hops, gross_ratio)."""
    app = MasterSlavePiApp.default_5x5(
        n_slaves=8, duplicate=False, n_terms=n_terms
    )
    simulator = NocSimulator(
        Mesh2D(5, 5),
        StochasticProtocol(forward_probability),
        seed=seed,
        link_model=LinkModel(
            frequency_hz=link_frequency_hz,
            energy_per_bit_j=link_energy_per_bit_j,
        ),
        default_ttl=default_ttl,
        # Round period per Eq. 2, sized for this app's packet (~20 B
        # task/result payloads + header/CRC overhead).
        payload_bits=160,
    )
    app.deploy(simulator)
    result = simulator.run(max_rounds=500, until=lambda sim: app.master.complete)
    if not app.master.complete:
        raise RuntimeError("fault-free NoC run failed to complete")
    return (
        result.time_s,
        result.stats.mean_delivery_hops,
        result.stats.transmissions_delivered / max(result.stats.deliveries, 1),
    )


def run(
    n_runs: int = 3,
    forward_probability: float = 0.5,
    technology: TechnologyLibrary = TECH_025UM,
    seed: int = 0,
    n_terms: int = 400,
    default_ttl: int = 10,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> BusComparison:
    """Run the workload on both substrates and assemble the comparison."""
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    sweep = opts.make_runner()
    noc_runs = sweep.run(
        SimTask.call(
            _run_noc_once,
            forward_probability=forward_probability,
            seed=seed + run_index,
            n_terms=n_terms,
            default_ttl=default_ttl,
            link_frequency_hz=technology.link_frequency_hz,
            link_energy_per_bit_j=technology.link_energy_per_bit_j,
            label=f"fig4_6 noc run={run_index}",
        )
        for run_index in range(n_runs)
    )
    noc_latencies = [time_s for time_s, _, _ in noc_runs]
    noc_path_hops = [hops for _, hops, _ in noc_runs]
    noc_gross_ratio = [ratio for _, _, ratio in noc_runs]

    bus_app = MasterSlavePiApp.default_5x5(
        n_slaves=8, duplicate=False, n_terms=n_terms
    )
    bus = BusSimulator(
        25,
        bus_model=BusModel(
            frequency_hz=technology.bus_frequency_hz,
            energy_per_bit_j=technology.bus_energy_per_bit_j,
        ),
        seed=seed,
    )
    bus_result = run_on_bus(bus_app, bus)
    if not bus_result.completed:
        raise RuntimeError("fault-free bus run failed to complete")

    noc_latency = sum(noc_latencies) / len(noc_latencies)
    mean_hops = sum(noc_path_hops) / len(noc_path_hops)
    path_energy_per_bit = mean_hops * technology.link_energy_per_bit_j
    gross_per_delivery = sum(noc_gross_ratio) / len(noc_gross_ratio)
    gross_energy_per_bit = (
        gross_per_delivery * technology.link_energy_per_bit_j
    )
    bus_energy_per_bit = technology.bus_energy_per_bit_j
    return BusComparison(
        noc_runs_latency_s=tuple(noc_latencies),
        noc_latency_s=noc_latency,
        bus_latency_s=bus_result.time_s,
        latency_ratio=bus_result.time_s / noc_latency,
        noc_path_energy_per_bit_j=path_energy_per_bit,
        noc_gross_energy_per_bit_j=gross_energy_per_bit,
        bus_energy_per_bit_j=bus_energy_per_bit,
        path_energy_ratio=path_energy_per_bit / bus_energy_per_bit,
        gross_energy_ratio=gross_energy_per_bit / bus_energy_per_bit,
        noc_energy_delay=path_energy_per_bit * noc_latency,
        bus_energy_delay=bus_energy_per_bit * bus_result.time_s,
    )
