"""Ablation: bus arbitration policies under contention.

The thesis ignores arbitration overhead but the policy still shapes the
bus baseline's latency; this bench compares round-robin, fixed-priority
and TDMA arbitration on a contended gather workload and checks the
classic outcomes (TDMA pays idle slots; fixed priority serves low ids
first but finishes the batch in the same bus-bound time).
"""

from repro.bus import (
    BusSimulator,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
)
from repro.noc.tile import IPCore


class _Sender(IPCore):
    def __init__(self, destination, n):
        self.destination = destination
        self.n = n
        self.sent = 0

    def on_start(self, ctx):
        for k in range(self.n):
            ctx.send(self.destination, bytes([k]))
            self.sent += 1

    @property
    def complete(self):
        return self.sent >= self.n


class _Gather(IPCore):
    def __init__(self, expected):
        self.expected = expected
        self.received = []

    def on_receive(self, ctx, packet):
        self.received.append(packet.source)

    @property
    def complete(self):
        return len(self.received) >= self.expected


def _run(arbiter_factory, n_senders=6, per_sender=4, seed=0):
    bus = BusSimulator(n_senders + 1, arbiter_factory(), seed=seed)
    gather = _Gather(n_senders * per_sender)
    bus.mount(n_senders, gather)
    for module in range(n_senders):
        bus.mount(module, _Sender(n_senders, per_sender))
    return bus.run(), gather


def test_ablation_bus_arbiters(benchmark, shape_report):
    def sweep():
        return {
            "round_robin": _run(RoundRobinArbiter),
            "fixed_priority": _run(FixedPriorityArbiter),
            "tdma": _run(lambda: TdmaArbiter(7)),
        }

    rows = benchmark(sweep)
    rr, fp, tdma = rows["round_robin"][0], rows["fixed_priority"][0], rows["tdma"][0]
    assert rr.completed and fp.completed and tdma.completed
    # Same payload volume -> same transfer time; TDMA adds idle slots.
    assert tdma.idle_slots > 0
    assert tdma.time_s > rr.time_s
    assert fp.time_s == rr.time_s  # work-conserving policies tie on makespan
    # Fixed priority drains module 0 entirely before module 5 gets a word.
    fp_order = rows["fixed_priority"][1].received
    assert fp_order[:4] == [0, 0, 0, 0]
    # Round robin interleaves sources.
    rr_order = rows["round_robin"][1].received
    assert len(set(rr_order[:6])) == 6
    shape_report["ablation_arbiters"] = {
        name: {
            "time_us": round(result.time_s * 1e6, 2),
            "idle_slots": result.idle_slots,
        }
        for name, (result, _) in rows.items()
    }
