"""Deterministic fault-tolerant adaptive routing — the gossip baseline.

The thesis justifies stochastic communication by what it replaces:
deterministic routing that must be told about faults.  This module
supplies that baseline on the *same* engine, faults and metrics, in the
spirit of the fault-tolerant NoC routing literature (Stroobant et al.'s
reconfigurable adaptive routing, arXiv:1811.11262's congestion/fault
aware protocols): minimal-path forwarding plus a local detour rule that
reacts to observed link failures.

Rule
----

* **Minimal-path broadcast** — every packet carries its source; each
  tile forwards a packet exactly once over each outgoing link that makes
  forward progress, i.e. to every neighbor one hop *farther* from the
  source (BFS distance).  On a healthy mesh this walks the shortest-path
  DAG: saturation in eccentricity(source) rounds with one transmission
  per DAG edge — far cheaper than any gossip, and perfectly
  deterministic (the policy never draws from the RNG).
* **Fault detour** — when a transmission vanishes on a dead link, the
  sending tile falls back to time-limited local flooding: for the next
  ``detour_rounds`` rounds it forwards buffered packets over *all* its
  not-yet-used links, routing around single failures.  The reaction is
  latched at the next round boundary (see
  :meth:`~repro.policies.base.ForwardingPolicy.on_dead_link` backend
  note), so object and fast backends stay bit-identical.

The point of the baseline is its *fragility envelope*: with no
redundancy in the common case, coordinated or repeated faults (chaos
scenarios beyond single dead links, data upsets that kill the only copy
in flight) degrade it sharply — exactly the regime where the paper's
stochastic redundancy pays for itself.  ``repro frontier`` quantifies
that crossover.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.policies.base import (
    BatchDecisionView,
    ForwardingPolicy,
    PolicyContext,
    register_policy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packet import Packet
    from repro.noc.topology import Topology


@register_policy
class AdaptiveRoutePolicy(ForwardingPolicy):
    """Minimal-path broadcast with time-limited local-flood detours.

    Args:
        detour_rounds: rounds a tile keeps local-flooding after seeing
            one of its transmissions die on a dead link (0 disables
            detours: pure minimal-path routing).
    """

    kind = "adaptive_route"

    def __init__(self, detour_rounds: int = 4) -> None:
        if detour_rounds < 0:
            raise ValueError(
                f"detour_rounds must be >= 0, got {detour_rounds}"
            )
        self.detour_rounds = int(detour_rounds)
        self._topology: "Topology | None" = None
        #: source tile -> {tile: BFS hop distance} (static per topology).
        self._dist_cache: dict[int, dict[int, int]] = {}
        #: (tile, packet key, neighbor) links already used.
        self._sent: set[tuple[int, tuple[int, int], int]] = set()
        #: tile -> first round its detour window no longer covers.
        self._active_detour: dict[int, int] = {}
        #: dead-link reactions observed this round, promoted at the next
        #: round boundary (object/fast hook-ordering differs mid-round).
        self._pending_detour: dict[int, int] = {}

    def spec_params(self) -> dict[str, Any]:
        return {"detour_rounds": self.detour_rounds}

    @property
    def is_deterministic(self) -> bool:
        return True

    # ----------------------------------------------------------------- hooks

    def bind(self, topology: Any) -> None:
        self._topology = topology
        self._dist_cache.clear()

    def reset(self) -> None:
        self._sent.clear()
        self._active_detour.clear()
        self._pending_detour.clear()

    def on_round_begin(self, round_index: int) -> None:
        if self._pending_detour:
            for tile_id, until in self._pending_detour.items():
                if until > self._active_detour.get(tile_id, -1):
                    self._active_detour[tile_id] = until
            self._pending_detour.clear()
        if self._active_detour:
            for tile_id in [
                t for t, until in self._active_detour.items()
                if until <= round_index
            ]:
                del self._active_detour[tile_id]

    def on_dead_link(self, src: int, dst: int, round_index: int) -> None:
        del dst
        until = round_index + 1 + self.detour_rounds
        if until > self._pending_detour.get(src, -1):
            self._pending_detour[src] = until

    # ------------------------------------------------------------- distances

    def _distances(self, source: int) -> dict[int, int]:
        """BFS hop distances from `source` (cached; whole topology)."""
        dist = self._dist_cache.get(source)
        if dist is not None:
            return dist
        topology = self._topology
        if topology is None:
            raise RuntimeError(
                "AdaptiveRoutePolicy needs bind(topology) before deciding; "
                "the engine binds automatically — standalone use must call "
                "policy.bind(topology) itself"
            )
        dist = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: list[int] = []
            for tile_id in frontier:
                d_next = dist[tile_id] + 1
                for neighbor in topology.neighbors(tile_id):
                    if neighbor not in dist:
                        dist[neighbor] = d_next
                        next_frontier.append(neighbor)
            frontier = next_frontier
        self._dist_cache[source] = dist
        return dist

    def in_detour(self, tile_id: int, round_index: int) -> bool:
        """Is `tile_id` local-flooding at `round_index`?"""
        return self._active_detour.get(tile_id, -1) > round_index

    # ------------------------------------------------------------- decisions

    def decide(
        self, packet: "Packet", link: tuple[int, int], ctx: PolicyContext
    ) -> bool:
        tile_id, neighbor = link
        sent_key = (tile_id, packet.key, neighbor)
        if sent_key in self._sent:
            return False
        if self.in_detour(tile_id, ctx.round_index):
            self._sent.add(sent_key)
            return True
        dist = self._distances(packet.source)
        d_self = dist.get(tile_id)
        d_neighbor = dist.get(neighbor)
        if d_self is None or d_neighbor is None or d_neighbor != d_self + 1:
            return False
        self._sent.add(sent_key)
        return True

    def decide_batch(self, batch: BatchDecisionView) -> np.ndarray | None:
        max_degree = batch.max_degree
        topology = self._topology
        if max_degree is None or topology is None:
            return None
        out = np.zeros((len(batch), max_degree), dtype=np.float64)
        round_index = batch.round_index
        sent = self._sent
        for row, (tile_id, source, message_id) in enumerate(
            zip(
                batch.tile_ids.tolist(),
                batch.sources.tolist(),
                batch.message_ids.tolist(),
            )
        ):
            key = (source, message_id)
            detour = self.in_detour(tile_id, round_index)
            dist = None if detour else self._distances(source)
            d_self = None if dist is None else dist.get(tile_id)
            for port, neighbor in enumerate(topology.neighbors(tile_id)):
                sent_key = (tile_id, key, neighbor)
                if sent_key in sent:
                    continue
                if detour:
                    forward = True
                else:
                    d_neighbor = dist.get(neighbor)
                    forward = (
                        d_self is not None
                        and d_neighbor is not None
                        and d_neighbor == d_self + 1
                    )
                if forward:
                    sent.add(sent_key)
                    out[row, port] = 1.0
        return out

    def expected_copies_per_round(self, degree: int) -> float:
        # Steady state forwards each message once per DAG edge, not per
        # round; the per-round expectation is well under one copy per
        # port.  Report the single-shot upper bound.
        return float(degree)
