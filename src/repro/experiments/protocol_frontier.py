"""Protocol frontier: paired head-to-head comparison of spreading rules.

:mod:`repro.experiments.policy_compare` sweeps forwarding *policies*
(per-port coin variants of the thesis' push gossip).  This harness
widens the race to genuinely different *protocols*:

* **bernoulli** — the thesis' push gossip (Bernoulli(p) per port);
* **push_pull** — Doerr-style rumor spreading where uninformed tiles
  also pull from a random neighbor each round
  (:class:`repro.policies.PushPullPolicy`);
* **push_pull + feedback** — the same with feedback termination: a tile
  stops pushing a message after ``feedback_k`` duplicate
  acknowledgements (:class:`repro.policies.FeedbackTermination`);
* **adaptive_route** — the deterministic fault-tolerant adaptive-routing
  baseline (:class:`repro.policies.AdaptiveRoutePolicy`), the
  non-stochastic strawman the paper argues against.

Every (protocol, fault level, repetition) cell runs the same
broadcast-saturation workload on the same engine, faults and energy
model.  Repetitions at matched fault levels share seeds (common random
numbers), so protocols face *identical* upset streams and crash maps and
the comparison is paired, not just averaged.  Cells report coverage,
completion/deadline rates, saturation latency, link transmissions,
pull-request control traffic and Eq. 3 energy.

:func:`certify_frontier` extends the PR 5/PR 8 certified
chaos-tolerance envelope to every protocol: each
(protocol, scenario kind, intensity) cell carries an SPRT-decided
:class:`repro.stats.BernoulliClaim`, so "push-pull tolerates burst
upsets the baseline does not" becomes a claim with explicit error
bounds instead of a point estimate.  ``repro frontier`` is the CLI
face; ``docs/protocols-frontier.md`` walks through the methodology and
a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.experiments.chaos import scenario_for
from repro.experiments.common import (
    UNSET,
    ExperimentOptions,
    backend_params,
    resolve_options,
)
from repro.experiments.grid_spread import _BroadcastSeed
from repro.experiments.policy_compare import _draw_dead_links
from repro.faults import CrashPlan, FaultConfig
from repro.noc.engine import NocSimulator
from repro.noc.topology import Mesh2D
from repro.policies import PolicySpec
from repro.runners import SimTask, spawn_seeds
from repro.stats import BernoulliClaim, Certificate, CertificationRunner, Verdict

#: The default protocol lineup, by spec (order = presentation order).
DEFAULT_PROTOCOLS: tuple[PolicySpec, ...] = (
    PolicySpec.of("bernoulli", forward_probability=0.5),
    PolicySpec.of("push_pull"),
    PolicySpec.of("push_pull", feedback_k=2),
    PolicySpec.of("adaptive_route"),
)


@dataclass(frozen=True)
class FrontierPoint:
    """One (protocol, fault axis, fault level) cell of the comparison.

    Attributes:
        protocol: the protocol spec's display name.
        fault: swept axis — "upset" or "link_crash".
        level: the axis value (a probability, or a dead-link count).
        coverage: mean fraction of tiles informed at the end.
        completion_rate: fraction of repetitions reaching full coverage
            within the round budget.
        deadline_rate: fraction of repetitions reaching full coverage
            within ``deadline_rounds`` — the real-time view of latency.
        rounds: mean rounds to saturation (budget when not reached).
        transmissions: mean attempted link transmissions (pushes).
        pull_requests: mean pull-request control packets (zero for
            push-only protocols).
        energy_j: mean communication energy (Eq. 3), pulls included.
        time_s: mean wall-clock latency.
        repetitions: Monte-Carlo repetitions behind the means.
    """

    protocol: str
    fault: str
    level: float
    coverage: float
    completion_rate: float
    deadline_rate: float
    rounds: float
    transmissions: float
    pull_requests: float
    energy_j: float
    time_s: float
    repetitions: int


@dataclass(frozen=True)
class FrontierReport:
    """A full frontier campaign: the paired comparison grid.

    Attributes:
        points: one :class:`FrontierPoint` per (protocol, axis, level),
            protocols in lineup order within each axis.
        deadline_rounds: the round budget behind ``deadline_rate``.
    """

    points: tuple[FrontierPoint, ...]
    deadline_rounds: int


def _frontier_once(
    side: int,
    spec: PolicySpec,
    p_upset: float,
    n_dead_links: int,
    max_rounds: int,
    seed: int,
    backend: str = "object",
) -> dict[str, float]:
    """One broadcast-saturation run of `spec` under one fault setting."""
    topology = Mesh2D(side, side)
    crash_plan = None
    if n_dead_links:
        crash_plan = CrashPlan(
            dead_links=_draw_dead_links(topology, n_dead_links, seed)
        )
    simulator = NocSimulator(
        topology,
        spec,
        FaultConfig(p_upset=p_upset),
        seed=seed,
        default_ttl=max_rounds,
        crash_plan=crash_plan,
        backend=backend,
    )
    simulator.mount(0, _BroadcastSeed(ttl=max_rounds))
    n = topology.n_tiles
    result = simulator.run(
        max_rounds, until=lambda sim: len(sim.informed_tiles()) == n
    )
    stats = result.stats
    return {
        "coverage": len(simulator.informed_tiles()) / n,
        "completed": float(result.completed),
        "rounds": float(result.rounds),
        "transmissions": float(stats.transmissions_attempted),
        "pull_requests": float(stats.pull_requests),
        "energy_j": stats.energy_j,
        "time_s": result.time_s,
    }


def _plan(
    protocols: tuple[PolicySpec, ...],
    upset_rates: tuple[float, ...],
    link_crash_counts: tuple[int, ...],
    repetitions: int,
    seed: int,
) -> list[tuple[PolicySpec, str, float, dict, int, int]]:
    """The flat task plan: ``(spec, fault, level, overrides, rep, seed)``.

    Deterministic and pure — tests assert the pairing property on it
    directly: every protocol at a matched ``(fault, level, rep)`` gets
    the *same* task seed, hence the same upset stream and crash map.
    """
    plan: list[tuple[PolicySpec, str, float, dict, int, int]] = []
    for level in upset_rates:
        for spec in protocols:
            for rep in range(repetitions):
                plan.append(
                    (spec, "upset", level, {"p_upset": level}, rep, seed + rep)
                )
    for count in link_crash_counts:
        for spec in protocols:
            for rep in range(repetitions):
                plan.append(
                    (
                        spec,
                        "link_crash",
                        float(count),
                        {"n_dead_links": count},
                        rep,
                        seed + rep,
                    )
                )
    return plan


def _aggregate(
    spec: PolicySpec,
    fault: str,
    level: float,
    outcomes: list[dict[str, float]],
    deadline_rounds: int,
) -> FrontierPoint:
    def mean(field: str) -> float:
        return float(np.mean([outcome[field] for outcome in outcomes]))

    # Deadline behavior is derived at aggregation time, so the deadline
    # knob never enters task cache keys — re-running with a different
    # deadline reuses every cached replicate.
    deadline_hits = [
        bool(outcome["completed"]) and outcome["rounds"] <= deadline_rounds
        for outcome in outcomes
    ]
    return FrontierPoint(
        protocol=spec.name,
        fault=fault,
        level=level,
        coverage=mean("coverage"),
        completion_rate=mean("completed"),
        deadline_rate=float(np.mean(deadline_hits)),
        rounds=mean("rounds"),
        transmissions=mean("transmissions"),
        pull_requests=mean("pull_requests"),
        energy_j=mean("energy_j"),
        time_s=mean("time_s"),
        repetitions=len(outcomes),
    )


def run(
    side: int = 4,
    protocols: tuple[PolicySpec, ...] = DEFAULT_PROTOCOLS,
    upset_rates: tuple[float, ...] = (0.0, 0.2, 0.4),
    link_crash_counts: tuple[int, ...] = (4, 8),
    repetitions: int = 5,
    seed: int = 0,
    max_rounds: int = 48,
    deadline_rounds: int | None = None,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    backend: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> FrontierReport:
    """Race every protocol against every fault axis (one flat task batch).

    The axes are swept one at a time from a fault-free baseline: the
    "upset" axis varies ``p_upset`` alone, "link_crash" kills that many
    randomly chosen directed links.  Repetition ``r`` sees task seed
    ``seed + r`` under *every* protocol (common random numbers), so each
    cell row is a paired observation.

    Args:
        side: mesh side length.
        protocols: the protocol lineup, as :class:`PolicySpec` entries.
        upset_rates: swept ``p_upset`` levels (0.0 = clean baseline).
        link_crash_counts: swept dead-link counts.
        repetitions: Monte-Carlo repetitions per cell.
        seed: seed root; repetition ``r`` runs at ``seed + r``.
        max_rounds: per-run round budget.
        deadline_rounds: the soft real-time deadline behind
            ``deadline_rate`` (defaults to ``max_rounds``, making
            ``deadline_rate`` coincide with ``completion_rate``).
        options: execution options (workers, cache, backend, database).

    Returns:
        The :class:`FrontierReport` with one point per (protocol, axis,
        level).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if deadline_rounds is None:
        deadline_rounds = max_rounds
    if deadline_rounds < 1:
        raise ValueError(f"deadline_rounds must be >= 1, got {deadline_rounds}")
    opts = resolve_options(
        options,
        supports=("backend",),
        runner=runner,
        n_workers=n_workers,
        cache_dir=cache_dir,
        backend=backend,
    )
    backend = opts.backend
    sweep = opts.make_runner()

    plan = _plan(protocols, upset_rates, link_crash_counts, repetitions, seed)
    tasks = [
        SimTask.call(
            _frontier_once,
            side=side,
            spec=spec,
            p_upset=overrides.get("p_upset", 0.0),
            n_dead_links=overrides.get("n_dead_links", 0),
            max_rounds=max_rounds,
            seed=task_seed,
            label=f"frontier {spec.name} {fault}={level} rep={rep}",
            **backend_params(backend),
        )
        for spec, fault, level, overrides, rep, task_seed in plan
    ]
    outcomes = sweep.run(tasks)

    points = []
    for index in range(0, len(plan), repetitions):
        spec, fault, level, _, _, _ = plan[index]
        points.append(
            _aggregate(
                spec,
                fault,
                level,
                outcomes[index:index + repetitions],
                deadline_rounds,
            )
        )
    return FrontierReport(
        points=tuple(points), deadline_rounds=deadline_rounds
    )


def format_table(report: FrontierReport) -> str:
    """Render the paired comparison as an aligned table grouped by axis."""
    points = report.points
    lines = [
        f"protocol frontier (deadline = {report.deadline_rounds} rounds)"
    ]
    header = (
        f"{'protocol':<30} {'level':>7} {'coverage':>9} {'complete':>9} "
        f"{'deadline':>9} {'rounds':>7} {'transmit':>9} {'pulls':>7} "
        f"{'energy_J':>10}"
    )
    for fault in dict.fromkeys(point.fault for point in points):
        lines.append(f"--- fault axis: {fault} ---")
        lines.append(header)
        for point in points:
            if point.fault != fault:
                continue
            lines.append(
                f"{point.protocol:<30} {point.level:>7g} "
                f"{point.coverage:>9.2%} {point.completion_rate:>9.2%} "
                f"{point.deadline_rate:>9.2%} {point.rounds:>7.1f} "
                f"{point.transmissions:>9.0f} {point.pull_requests:>7.0f} "
                f"{point.energy_j:>10.3e}"
            )
    return "\n".join(lines)


# --------------------------------------------------------- certified frontier


def _frontier_chaos_once(
    kind: str,
    intensity: float,
    spec: PolicySpec,
    side: int,
    seed: int,
    max_rounds: int,
    backend: str = "object",
) -> tuple:
    """One broadcast run of `spec` under one chaos-scenario cell.

    Returns ``(completed, rounds, coverage_fraction)`` — the same shape
    as :func:`repro.experiments.chaos._chaos_once`, so the certified
    claims extract ``coverage`` the same way.
    """
    topology = Mesh2D(side, side)
    n = topology.n_tiles
    simulator = NocSimulator(
        topology,
        spec,
        seed=seed,
        default_ttl=max_rounds,
        scenario=scenario_for(kind, intensity),
        backend=backend,
    )
    simulator.mount(0, _BroadcastSeed(ttl=max_rounds))
    result = simulator.run(
        max_rounds, until=lambda sim: len(sim.informed_tiles()) == n
    )
    return result.completed, result.rounds, len(simulator.informed_tiles()) / n


@dataclass(frozen=True)
class FrontierCell:
    """One ``(protocol, kind, intensity)`` cell's certified verdict.

    Attributes:
        protocol: the protocol spec's display name.
        kind: scenario axis (see :data:`repro.experiments.chaos.CHAOS_AXES`).
        intensity: the swept scenario intensity.
        certificate: the full :class:`repro.stats.Certificate`.
    """

    protocol: str
    kind: str
    intensity: float
    certificate: Certificate

    @property
    def verdict(self) -> Verdict:
        """The cell's terminal verdict (accept / reject / undecided)."""
        return self.certificate.verdict


@dataclass(frozen=True)
class FrontierEnvelope:
    """Certified chaos-tolerance envelopes, one per protocol.

    Attributes:
        cells: one :class:`FrontierCell` per (protocol, kind, intensity).
        coverage_target: per-run coverage bar of the certified claims.
        claim: the claim template every cell ran.
        thresholds: per protocol then kind, the largest intensity whose
            claim was **accepted** (``None`` when no level certified) —
            the protocols' tolerance envelopes, side by side.
    """

    cells: tuple[FrontierCell, ...]
    coverage_target: float
    claim: BernoulliClaim
    thresholds: dict[str, dict[str, float | None]]


def certify_frontier(
    protocols: tuple[PolicySpec, ...] = DEFAULT_PROTOCOLS,
    kinds: tuple[str, ...] = ("burst_upsets",),
    levels: tuple[float, ...] = (0.0, 0.5, 0.9),
    side: int = 4,
    seed: int = 0,
    max_rounds: int = 96,
    coverage_target: float = 0.99,
    target: float = 0.9,
    indifference: float = 0.2,
    alpha: float = 0.05,
    beta: float = 0.05,
    batch_size: int = 8,
    max_replicates: int = 64,
    options: ExperimentOptions | None = None,
    backend: Any = None,
) -> FrontierEnvelope:
    """Certify every protocol's chaos-tolerance envelope cell by cell.

    For each (protocol, kind, intensity) cell, certifies the Bernoulli
    claim "P(final coverage >= `coverage_target`) >= `target`" by SPRT
    over adaptive replicate batches — the per-protocol analogue of
    :func:`repro.experiments.certify.certify_chaos_envelope`, sharing
    its claim construction and seeding discipline, so envelopes are
    bit-identical across worker counts and batch sizes.

    Returns:
        The :class:`FrontierEnvelope` with per-protocol certified
        thresholds; with a results database attached the per-cell
        certificates land in its ``certificates`` table.
    """
    for kind in kinds:
        scenario_for(kind, 0.0)  # validate axes before paying for runs
    opts = resolve_options(options, supports=("backend",))
    engine_backend = opts.backend if backend is None else backend
    sweep = opts.make_runner()
    certifier = CertificationRunner(
        sweep, batch_size=batch_size, max_replicates=max_replicates
    )
    claim = BernoulliClaim(
        metric=f"coverage>={coverage_target}",
        target=target,
        indifference=indifference,
        alpha=alpha,
        beta=beta,
    )
    grid = [
        (spec, kind, level)
        for spec in protocols
        for kind in kinds
        for level in levels
    ]
    cell_seeds = spawn_seeds(seed, len(grid))
    cells: list[FrontierCell] = []
    for (spec, kind, level), cell_seed in zip(grid, cell_seeds):
        certificate = certifier.certify(
            claim,
            "repro.experiments.protocol_frontier:_frontier_chaos_once",
            {
                "kind": kind,
                "intensity": level,
                "spec": spec,
                "side": side,
                "max_rounds": max_rounds,
                "backend": engine_backend,
            },
            label=f"frontier {spec.name} {kind} intensity={level}",
            base_seed=cell_seed,
        )
        cells.append(
            FrontierCell(
                protocol=spec.name,
                kind=kind,
                intensity=level,
                certificate=certificate,
            )
        )
    thresholds: dict[str, dict[str, float | None]] = {}
    for spec in protocols:
        per_kind: dict[str, float | None] = {}
        for kind in kinds:
            accepted = [
                cell.intensity
                for cell in cells
                if cell.protocol == spec.name
                and cell.kind == kind
                and cell.verdict is Verdict.ACCEPT
            ]
            per_kind[kind] = max(accepted) if accepted else None
        thresholds[spec.name] = per_kind
    return FrontierEnvelope(
        cells=tuple(cells),
        coverage_target=coverage_target,
        claim=claim,
        thresholds=thresholds,
    )


def format_envelope(envelope: FrontierEnvelope) -> str:
    """Render the per-protocol certified envelopes as a text report."""
    claim = envelope.claim
    lines = [
        "certified protocol-frontier envelope",
        f"  claim per cell: P(coverage >= {envelope.coverage_target}) "
        f">= {claim.target} (vs <= {claim.p0:g}, "
        f"alpha={claim.alpha}, beta={claim.beta})",
        "",
        f"  {'protocol':<30} {'scenario':<14} {'intensity':>9} "
        f"{'verdict':>9} {'replicates':>10}",
    ]
    for cell in envelope.cells:
        certificate = cell.certificate
        lines.append(
            f"  {cell.protocol:<30} {cell.kind:<14} {cell.intensity:>9.2f} "
            f"{certificate.verdict.value:>9} "
            f"{certificate.n_observed:>4}/{certificate.budget:<5}"
        )
    lines.append("")
    lines.append("  certified thresholds (largest accepted intensity):")
    for protocol, per_kind in envelope.thresholds.items():
        for kind, threshold in per_kind.items():
            shown = "none accepted" if threshold is None else f"{threshold:.2f}"
            lines.append(f"    {protocol:<30} {kind:<14} {shown}")
    return "\n".join(lines) + "\n"
