"""Link integrity for the markdown documentation set.

Every relative link in ``docs/*.md``, ``README.md`` and
``EXPERIMENTS.md`` must resolve to a file in the repository — dead
cross-references are a docs bug, and this is the test the CI docs step
runs.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documents whose links we guarantee.
DOC_FILES = sorted(
    [
        *(REPO_ROOT / "docs").glob("*.md"),
        REPO_ROOT / "README.md",
        REPO_ROOT / "EXPERIMENTS.md",
    ]
)

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if target:
            links.append(target)
    return links


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(doc):
    missing = [
        target
        for target in _relative_links(doc)
        if not (doc.parent / target).exists()
    ]
    assert not missing, (
        f"{doc.relative_to(REPO_ROOT)} has dead relative links: {missing}"
    )


def test_docs_pages_exist():
    expected = {
        "index.md",
        "observability.md",
        "simulator.md",
        "runners.md",
        "policies.md",
        "protocol.md",
        "protocols-frontier.md",
        "service.md",
        "operations.md",
        "stats.md",
    }
    present = {p.name for p in (REPO_ROOT / "docs").glob("*.md")}
    assert expected <= present


def test_index_links_every_docs_page():
    index = REPO_ROOT / "docs" / "index.md"
    linked = set(_relative_links(index))
    for page in (REPO_ROOT / "docs").glob("*.md"):
        if page.name == "index.md":
            continue
        assert page.name in linked, (
            f"docs/index.md does not link {page.name}"
        )


def test_observability_page_is_cross_linked():
    # The observer/metrics docs must be reachable from the pages that
    # describe the layers they hook into.
    for name in ("simulator.md", "runners.md"):
        text = (REPO_ROOT / "docs" / name).read_text()
        assert "observability.md" in text, (
            f"docs/{name} does not link docs/observability.md"
        )
