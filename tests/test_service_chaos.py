"""Tests for the service-level chaos harness (repro.service.chaos)."""

from __future__ import annotations

import pytest

from repro.service import ResultsDB
from repro.service.chaos import (
    DEFAULT_LEVELS,
    INJECTORS,
    ChaosSpec,
    _planned_mode,
    certify_service_envelope,
    format_service_envelope,
    run_campaign,
    spec_for,
)


class TestChaosSpec:
    def test_fraction_bounds_are_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_fraction=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(hang_fraction=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(kill_fraction=0.6, hang_fraction=0.6)

    def test_hang_and_strikes_are_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(hang_s=0.0)
        with pytest.raises(ValueError):
            ChaosSpec(strikes=0)

    def test_spec_for_rejects_unknown_injector(self):
        with pytest.raises(ValueError, match="injector"):
            spec_for("cosmic_ray", 0.5)

    def test_spec_for_covers_every_registered_injector(self):
        for injector in INJECTORS:
            spec = spec_for(injector, 0.25)
            total = (
                spec.kill_fraction
                + spec.hang_fraction
                + spec.corrupt_fraction
            )
            assert total == pytest.approx(0.25)

    def test_default_levels_start_at_zero(self):
        assert DEFAULT_LEVELS[0] == 0.0


class TestInjectionPlan:
    def test_plan_is_deterministic_in_chaos_seed_and_task_seed(self):
        spec = ChaosSpec(
            kill_fraction=0.3,
            hang_fraction=0.3,
            corrupt_fraction=0.3,
            chaos_seed=5,
        )
        modes = [_planned_mode(spec, seed) for seed in range(64)]
        assert modes == [_planned_mode(spec, seed) for seed in range(64)]
        assert set(modes) <= {"kill", "hang", "corrupt", None}
        # With 64 draws at 30 % each, every mode appears (fixed seeds).
        assert {"kill", "hang", "corrupt"} <= {m for m in modes if m}

    def test_zero_intensity_plans_nothing(self):
        spec = spec_for("worker_kill", 0.0)
        assert all(_planned_mode(spec, seed) is None for seed in range(32))

    def test_distinct_chaos_seeds_give_distinct_plans(self):
        a = ChaosSpec(kill_fraction=0.5, chaos_seed=1)
        b = ChaosSpec(kill_fraction=0.5, chaos_seed=2)
        plans = [
            tuple(_planned_mode(spec, seed) for seed in range(64))
            for spec in (a, b)
        ]
        assert plans[0] != plans[1]


class TestCampaign:
    def test_corrupt_payload_campaign_stays_intact(self):
        outcome = run_campaign(
            spec_for("corrupt_payload", 0.5, chaos_seed=3),
            n_tasks=6,
            n_workers=2,
            seed=3,
        )
        assert outcome.strikes >= 1
        assert outcome.tasks_retried >= outcome.strikes
        assert outcome.intact

    def test_task_hang_campaign_stays_intact(self):
        outcome = run_campaign(
            spec_for("task_hang", 0.5, hang_s=1.0, chaos_seed=4),
            n_tasks=4,
            n_workers=2,
            seed=4,
        )
        assert outcome.strikes >= 1
        assert outcome.tasks_retried >= 1
        assert outcome.intact

    def test_undisturbed_campaign_is_trivially_intact(self):
        outcome = run_campaign(
            spec_for("worker_kill", 0.0), n_tasks=3, n_workers=2, seed=1
        )
        assert outcome.strikes == 0
        assert outcome.pool_rebuilds == 0
        assert outcome.intact

    def test_outcome_json_summary(self):
        outcome = run_campaign(
            spec_for("worker_kill", 0.0), n_tasks=2, n_workers=2, seed=2
        )
        document = outcome.to_json_dict()
        assert document["n_tasks"] == 2
        assert document["intact"] is True
        assert document["lost"] == 0
        assert set(document) >= {
            "identical",
            "strikes",
            "pool_rebuilds",
            "tasks_retried",
            "tasks_poisoned",
        }

    def test_campaign_rejects_empty(self):
        with pytest.raises(ValueError, match="n_tasks"):
            run_campaign(spec_for("worker_kill", 0.0), n_tasks=0)


class TestServiceEnvelope:
    # Loose SPRT settings keep the sequential test tiny: the claim
    # decides after a couple of intact replicates.
    _FAST = dict(
        n_tasks=4,
        target=0.5,
        indifference=0.4,
        alpha=0.1,
        beta=0.1,
        batch_size=2,
        max_replicates=4,
    )

    def test_worker_kill_cell_certifies_and_records(self, tmp_path):
        with ResultsDB(tmp_path / "service.db") as db:
            envelope = certify_service_envelope(
                injectors=("worker_kill",),
                levels=(0.25,),
                db=db,
                **self._FAST,
            )
            assert envelope.thresholds["worker_kill"] == 0.25
            (cell,) = envelope.cells
            assert cell.certificate.verdict.value == "accept"
            assert cell.probe.intact
            assert db.certificates()

        text = format_service_envelope(envelope)
        assert "certified service thresholds" in text
        assert "lost tasks: 0" in text
        assert "worker_kill" in text

    def test_unknown_injector_is_rejected_before_any_run(self):
        with pytest.raises(ValueError, match="injector"):
            certify_service_envelope(
                injectors=("solar_storm",), levels=(0.0,), **self._FAST
            )
