"""Simulation tracing and visualization.

The engine accepts an optional observer whose hooks fire on every notable
event (transmission, delivery, drop, round boundary).  Two observers ship
here:

* :class:`TraceRecorder` — an append-only event log for debugging and
  post-hoc analysis (who held message X in round 7? where did it die?);
* :func:`render_spread` — an ASCII heat map of a mesh showing which tiles
  are informed, for terminal-friendly inspection of broadcast spread.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.noc.topology import Mesh2D

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packet import Packet
    from repro.noc.engine import NocSimulator


class EventKind(enum.Enum):
    """The event vocabulary of the simulation trace."""

    ROUND_BEGIN = "round_begin"
    TRANSMISSION = "transmission"
    DEAD_LINK_DROP = "dead_link_drop"
    UPSET_INJECTED = "upset_injected"
    OVERFLOW_DROP = "overflow_drop"
    CRC_DROP = "crc_drop"
    DELIVERY = "delivery"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event.

    Attributes:
        round_index: gossip round the event occurred in.
        kind: event category.
        tile: the tile acting (sender for transmissions, receiver for
            deliveries/drops); -1 for round boundaries.
        peer: the other endpoint where applicable (destination tile of a
            transmission), else -1.
        key: the packet's (source, message id), or None for round events.
    """

    round_index: int
    kind: EventKind
    tile: int = -1
    peer: int = -1
    key: tuple[int, int] | None = None


class Observer:
    """No-op base observer; subclass and override what you need."""

    def on_bind(self, simulator: "NocSimulator") -> None:
        """The engine adopted this observer (called once, at build time).

        Observers that sample simulator state at round boundaries (e.g.
        :class:`repro.metrics.MetricsCollector`) keep the reference;
        purely event-driven observers can ignore it.
        """

    def on_round_begin(self, round_index: int) -> None:
        """A new gossip round is starting."""

    def on_round_end(self, round_index: int) -> None:
        """A gossip round finished (after the send phase, or after the
        compute phase of the completion round)."""

    def on_transmission(
        self, round_index: int, src: int, dst: int, packet: "Packet"
    ) -> None:
        """A packet copy left `src` toward `dst` on a live link."""

    def on_dead_link_drop(self, round_index: int, src: int, dst: int) -> None:
        """A transmission was lost to a crashed link."""

    def on_upset_injected(
        self, round_index: int, src: int, dst: int, packet: "Packet"
    ) -> None:
        """A copy in flight was scrambled by a data upset."""

    def on_overflow_drop(self, round_index: int, tile: int) -> None:
        """An arriving packet was dropped by a full input buffer."""

    def on_crc_drop(
        self, round_index: int, tile: int, packet: "Packet"
    ) -> None:
        """A corrupt arrival was caught and discarded by the tile's CRC."""

    def on_delivery(
        self, round_index: int, tile: int, packet: "Packet"
    ) -> None:
        """A first intact copy was handed to a tile's IP."""


class FanoutObserver(Observer):
    """Broadcasts every engine hook to an ordered tuple of observers.

    The engine accepts a single observer; this adapter lets several
    coexist on one run (e.g. a :class:`TraceRecorder` *and* a
    :class:`repro.metrics.MetricsCollector`).  Children are invoked in
    tuple order for every hook, and each child sees exactly the event
    stream it would see running alone — the engine emits events once and
    the fan-out merely repeats them.

    Passing a tuple or list straight to ``NocSimulator(observer=...)``
    wraps it in a ``FanoutObserver`` automatically (see
    :func:`as_observer`).
    """

    def __init__(self, *observers: Observer) -> None:
        """Wrap `observers` (given variadically or as one iterable)."""
        if len(observers) == 1 and not isinstance(observers[0], Observer):
            observers = tuple(observers[0])  # a single iterable argument
        for child in observers:
            if not isinstance(child, Observer):
                raise TypeError(
                    f"FanoutObserver children must be Observers, got "
                    f"{type(child).__name__}"
                )
        self.children: tuple[Observer, ...] = tuple(observers)

    def on_bind(self, simulator: "NocSimulator") -> None:
        for child in self.children:
            child.on_bind(simulator)

    def on_round_begin(self, round_index: int) -> None:
        for child in self.children:
            child.on_round_begin(round_index)

    def on_round_end(self, round_index: int) -> None:
        for child in self.children:
            child.on_round_end(round_index)

    def on_transmission(self, round_index, src, dst, packet) -> None:
        for child in self.children:
            child.on_transmission(round_index, src, dst, packet)

    def on_dead_link_drop(self, round_index, src, dst) -> None:
        for child in self.children:
            child.on_dead_link_drop(round_index, src, dst)

    def on_upset_injected(self, round_index, src, dst, packet) -> None:
        for child in self.children:
            child.on_upset_injected(round_index, src, dst, packet)

    def on_overflow_drop(self, round_index, tile) -> None:
        for child in self.children:
            child.on_overflow_drop(round_index, tile)

    def on_crc_drop(self, round_index, tile, packet) -> None:
        for child in self.children:
            child.on_crc_drop(round_index, tile, packet)

    def on_delivery(self, round_index, tile, packet) -> None:
        for child in self.children:
            child.on_delivery(round_index, tile, packet)


def as_observer(observer) -> Observer | None:
    """Normalise the engine's ``observer`` argument.

    ``None`` passes through, a single :class:`Observer` passes through,
    and a tuple/list of observers is wrapped in a
    :class:`FanoutObserver` preserving order.
    """
    if observer is None or isinstance(observer, Observer):
        return observer
    if isinstance(observer, (tuple, list)):
        return FanoutObserver(*observer)
    raise TypeError(
        f"observer must be an Observer, a sequence of Observers, or None; "
        f"got {type(observer).__name__}"
    )


class TraceRecorder(Observer):
    """Records every event into :attr:`events` (append-only).

    Query helpers slice the log by message or by kind; memory use is one
    small dataclass per event, so cap long simulations with
    `max_events` if needed (recording stops silently at the cap).
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1 or None, got {max_events}")
        self.events: list[TraceEvent] = []
        self.max_events = max_events

    def _record(self, event: TraceEvent) -> None:
        if self.max_events is None or len(self.events) < self.max_events:
            self.events.append(event)

    # ------------------------------------------------------------- hooks

    def on_round_begin(self, round_index: int) -> None:
        self._record(TraceEvent(round_index, EventKind.ROUND_BEGIN))

    def on_transmission(self, round_index, src, dst, packet) -> None:
        self._record(
            TraceEvent(
                round_index, EventKind.TRANSMISSION, src, dst, packet.key
            )
        )

    def on_dead_link_drop(self, round_index, src, dst) -> None:
        self._record(
            TraceEvent(round_index, EventKind.DEAD_LINK_DROP, src, dst)
        )

    def on_upset_injected(self, round_index, src, dst, packet) -> None:
        self._record(
            TraceEvent(
                round_index, EventKind.UPSET_INJECTED, src, dst, packet.key
            )
        )

    def on_overflow_drop(self, round_index, tile) -> None:
        self._record(TraceEvent(round_index, EventKind.OVERFLOW_DROP, tile))

    def on_crc_drop(self, round_index, tile, packet) -> None:
        self._record(
            TraceEvent(round_index, EventKind.CRC_DROP, tile, key=packet.key)
        )

    def on_delivery(self, round_index, tile, packet) -> None:
        self._record(
            TraceEvent(round_index, EventKind.DELIVERY, tile, key=packet.key)
        )

    # ------------------------------------------------------------ queries

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def message_history(self, key: tuple[int, int]) -> list[TraceEvent]:
        """Every event touching one message, in order."""
        return [event for event in self.events if event.key == key]

    def delivery_round(self, key: tuple[int, int], tile: int) -> int | None:
        """Round a message reached a tile's IP, or None if it never did."""
        for event in self.events:
            if (
                event.kind == EventKind.DELIVERY
                and event.key == key
                and event.tile == tile
            ):
                return event.round_index
        return None

    def transmissions_per_round(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for event in self.of_kind(EventKind.TRANSMISSION):
            counts[event.round_index] = counts.get(event.round_index, 0) + 1
        return counts


def render_spread(simulator: "NocSimulator") -> str:
    """ASCII heat map of a mesh: '#' informed, '.' not, 'X' crashed.

    Only meshes render spatially; other topologies get a flat listing.
    """
    informed = set(simulator.informed_tiles())
    topology = simulator.topology
    if isinstance(topology, Mesh2D):
        lines = []
        for row in range(topology.rows):
            cells = []
            for col in range(topology.cols):
                tile_id = topology.tile_at(row, col)
                if not simulator.tiles[tile_id].alive:
                    cells.append("X")
                elif tile_id in informed:
                    cells.append("#")
                else:
                    cells.append(".")
            lines.append(" ".join(cells))
        return "\n".join(lines)
    markers = [
        "X" if not simulator.tiles[t].alive else "#" if t in informed else "."
        for t in topology.tile_ids
    ]
    return "".join(markers)
