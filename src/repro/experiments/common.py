"""Shared sweep plumbing for the experiment harnesses.

Every ``experiments.*.run(...)`` accepts the same three execution
keywords (see ``experiments/__init__.py`` for the full convention):

* ``n_workers`` — process-pool size (default 1: serial, the historical
  behavior);
* ``cache_dir`` — on-disk memoization directory (default None: off);
* ``runner`` — a pre-built :class:`repro.runners.SweepRunner` shared
  across calls (overrides the other two), which lets a batch script pool
  workers and cache across figures and lets tests inspect the runner's
  counters.

:func:`resolve_runner` turns those three into the runner to use.
"""

from __future__ import annotations

from repro.runners import SweepRunner


def resolve_runner(
    runner: SweepRunner | None = None,
    n_workers: int = 1,
    cache_dir: str | None = None,
) -> SweepRunner:
    """Return `runner` if given, else build one from the scalar knobs."""
    if runner is not None:
        return runner
    return SweepRunner(n_workers=n_workers, cache_dir=cache_dir)
