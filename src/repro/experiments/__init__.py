"""Experiment harnesses — one module per thesis figure.

Every module exposes a ``run(...)`` returning plain dataclasses/dicts with
the same series the thesis plots; the benchmarks in ``benchmarks/`` time
these harnesses, and EXPERIMENTS.md records their output against the
paper's numbers.  Parameters default to fast, CI-friendly sizes; pass
larger values to approach the thesis' settings.

Execution convention
--------------------

Every sweep-running entry point accepts one trailing keyword argument::

    run(..., options=ExperimentOptions(n_workers=4, cache_dir="cache"))

:class:`repro.experiments.common.ExperimentOptions` bundles every
execution knob — ``n_workers`` (process fan-out; results are
bit-identical for any worker count), ``runner`` (a pre-built, shared
:class:`repro.runners.SweepRunner`), ``cache_dir`` (on-disk result
memoization), ``db`` (a :class:`repro.service.ResultsDB` write-through
record), and, on harnesses that support them, ``backend`` and
``collect_metrics``.  The historical scalar keyword arguments
(``n_workers=``, ``runner=``, ``cache_dir=``, ``collect_metrics=``,
``backend=``) still work and mean exactly what they always did, but now
emit ``DeprecationWarning`` (see ``docs/runners.md``).

Options are pure execution plumbing: they never enter task cache keys,
and harnesses embed their historical per-repetition seed formulas in the
submitted tasks, so routed results match the original serial loops
exactly — the reproduced numbers do not change.
"""

from repro.experiments import (
    certify,
    chaos,
    fig3_1,
    fig4_4,
    fig4_5,
    fig4_6,
    fig4_8,
    fig4_9,
    fig4_10,
    fig4_11,
    fig5_3,
    grid_spread,
    islands,
    link_crashes,
    plots,
    policy_compare,
    protocol_frontier,
    report,
)

__all__ = [
    "certify",
    "chaos",
    "fig3_1",
    "fig4_4",
    "fig4_5",
    "fig4_6",
    "fig4_8",
    "fig4_9",
    "fig4_10",
    "fig4_11",
    "fig5_3",
    "grid_spread",
    "islands",
    "link_crashes",
    "plots",
    "policy_compare",
    "protocol_frontier",
    "report",
]
