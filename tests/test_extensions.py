"""Tests for the beyond-the-paper extensions: VBR mode, link-crash sweep,
island experiment, mid-run API exports."""

import numpy as np
import pytest

from repro.experiments import islands, link_crashes
from repro.mp3 import Mp3Decoder, Mp3Encoder, PcmSource, reconstruction_snr_db


class TestVbrMode:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            Mp3Encoder(mode="abr")

    def test_vbr_rate_follows_content(self):
        # A pure tone is dramatically cheaper to code transparently than
        # wideband noise; CBR would pin both to the same rate.  Full-size
        # granules give the frequency resolution that makes the tone
        # cheap (it smears across bands at small granules).
        rates = {}
        for kind in ("tone", "noise"):
            source = PcmSource(3, kind, seed=1, granule=576)
            frames = Mp3Encoder(mode="vbr", granule=576).encode(source)
            rates[kind] = Mp3Encoder.measured_bitrate_bps(
                frames, granule=576
            )
        assert rates["tone"] < 0.5 * rates["noise"]

    def test_vbr_decodes(self):
        source = PcmSource(4, "mixture", seed=2, granule=288)
        frames = Mp3Encoder(mode="vbr", granule=288).encode(source)
        reconstruction = Mp3Decoder(288).decode(
            {f.frame_index: f for f in frames}, 4
        )
        snr = reconstruction_snr_db(source.all_frames(), reconstruction)
        assert snr > 5.0

    def test_vbr_meets_mask_everywhere(self):
        from repro.mp3.psychoacoustic import PsychoacousticModel
        from repro.mp3.quantizer import RateLoopQuantizer

        model = PsychoacousticModel(144)
        rng = np.random.default_rng(3)
        t = np.arange(144) / 44100
        samples = 0.5 * np.sin(2 * np.pi * 1000 * t) + 0.02 * rng.normal(size=144)
        psycho = model.analyze(samples)
        spectrum = rng.normal(size=144) * 0.1
        granule = RateLoopQuantizer().quantize_vbr(spectrum, psycho)
        assert np.all(
            granule.band_distortion <= psycho.allowed_distortion() * (1 + 1e-9)
        )

    def test_vbr_picks_the_coarsest_transparent_gain(self):
        # One gain step coarser must violate the mask somewhere (else the
        # bisection would have chosen it and spent fewer bits).
        from repro.mp3.psychoacoustic import PsychoacousticModel
        from repro.mp3.quantizer import RateLoopQuantizer

        model = PsychoacousticModel(144)
        rng = np.random.default_rng(4)
        spectrum = rng.normal(size=144) * 0.05
        psycho = model.analyze(0.3 * np.sin(np.arange(144)))
        quantizer = RateLoopQuantizer()
        vbr = quantizer.quantize_vbr(spectrum, psycho)
        assert np.all(vbr.band_distortion <= psycho.allowed_distortion())
        coarser_gain = vbr.global_gain + 1
        if coarser_gain <= quantizer.gain_range[1]:
            values = quantizer.quantize_at(
                spectrum, coarser_gain, np.ones(144)
            )
            reconstructed = quantizer.dequantize(
                values,
                coarser_gain,
                np.zeros(psycho.n_bands, dtype=np.int64),
                psycho.band_edges,
            )
            distortion = quantizer._band_noise(
                spectrum, reconstructed, psycho.band_edges
            )
            assert np.any(distortion > psycho.allowed_distortion())


class TestLinkCrashSweep:
    def test_gentle_degradation(self):
        points = link_crashes.run(
            dead_link_counts=(0, 8, 16), repetitions=3
        )
        clean, mid, heavy = points
        assert clean.completion_rate == 1.0
        assert mid.completion_rate >= 0.6
        # Drops grow with dead links; latency grows only mildly.
        assert heavy.dead_link_drops > mid.dead_link_drops > 0
        assert heavy.latency_rounds < 4 * max(clean.latency_rounds, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            link_crashes.run(repetitions=0)


class TestIslandExperiment:
    def test_identity_partition_is_neutral(self):
        comparison = islands.run(island_voltage=1.0, repetitions=2)
        assert comparison.energy_saving == pytest.approx(0.0, abs=1e-9)

    def test_undervolting_saves_energy(self):
        comparison = islands.run(island_voltage=0.6, repetitions=3)
        assert comparison.energy_saving > 0.15
        assert comparison.islanded_energy_j < comparison.uniform_energy_j

    def test_validation(self):
        with pytest.raises(ValueError):
            islands.run(repetitions=0)
