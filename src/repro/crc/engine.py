"""A generic, table-driven CRC engine.

The engine is parameterised by a :class:`CrcSpec` (width, polynomial,
initial value, reflection flags, final XOR), the same model used by the
"Rocksoft" CRC catalogue.  Three standard codes are pre-registered:

* ``CRC8`` (SMBus: poly 0x07) — the 1-byte code a cheap NoC tile would use;
* ``CRC16_CCITT`` (poly 0x1021) — the thesis cites shift-register CRCs as the
  canonical on-chip error detector (§3.2.2);
* ``CRC32`` (IEEE 802.3) — for experiments on longer payloads.

All checks operate on :class:`bytes`; the fault injector flips bits in the
payload *and/or* the stored checksum, so detection behaves exactly like a
hardware decoder: any single burst shorter than the CRC width is caught, and
a random scramble escapes with probability ~2^-width.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class CrcSpec:
    """Parameters of a CRC in the Rocksoft model.

    Attributes:
        name: human-readable identifier (unique in the registry).
        width: register width in bits (8, 16, 32, ...).
        polynomial: generator polynomial, normal (MSB-first) representation
            without the implicit leading 1 term.
        init: initial shift-register contents.
        reflect_in: process input bytes least-significant-bit first.
        reflect_out: reflect the register before the final XOR.
        xor_out: value XOR-ed onto the register to produce the checksum.
        check: checksum of the ASCII bytes ``b"123456789"`` — the standard
            catalogue self-test vector.
    """

    name: str
    width: int
    polynomial: int
    init: int
    reflect_in: bool
    reflect_out: bool
    xor_out: int
    check: int

    def __post_init__(self) -> None:
        if self.width < 8 or self.width > 64 or self.width % 8:
            raise ValueError(
                f"unsupported CRC width {self.width}: the table-driven engine "
                "handles whole-byte widths between 8 and 64"
            )
        mask = (1 << self.width) - 1
        for field in ("polynomial", "init", "xor_out", "check"):
            value = getattr(self, field)
            if value & ~mask:
                raise ValueError(
                    f"{self.name}: {field}=0x{value:x} does not fit in "
                    f"{self.width} bits"
                )


def _reflect(value: int, width: int) -> int:
    """Reverse the lowest `width` bits of `value`."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@lru_cache(maxsize=None)
def _build_table(width: int, polynomial: int, reflect_in: bool) -> tuple[int, ...]:
    """Precompute the 256-entry byte-at-a-time lookup table."""
    mask = (1 << width) - 1
    top_bit = 1 << (width - 1)
    table = []
    for byte in range(256):
        if reflect_in:
            register = _reflect(byte, 8) << (width - 8)
        else:
            register = byte << (width - 8)
        for _ in range(8):
            if register & top_bit:
                register = ((register << 1) ^ polynomial) & mask
            else:
                register = (register << 1) & mask
        if reflect_in:
            register = _reflect(register, width)
        table.append(register)
    return tuple(table)


class CRC:
    """A concrete CRC calculator built from a :class:`CrcSpec`.

    >>> CRC16_CCITT.compute(b"123456789") == CRC16_CCITT.spec.check
    True
    """

    def __init__(self, spec: CrcSpec) -> None:
        self.spec = spec
        self._mask = (1 << spec.width) - 1
        self._table = _build_table(spec.width, spec.polynomial, spec.reflect_in)
        self._verify_check_value()

    def _verify_check_value(self) -> None:
        actual = self.compute(b"123456789")
        if actual != self.spec.check:
            raise ValueError(
                f"{self.spec.name}: self-test failed "
                f"(got 0x{actual:x}, expected 0x{self.spec.check:x})"
            )

    @property
    def width(self) -> int:
        return self.spec.width

    @property
    def n_check_bytes(self) -> int:
        """Bytes occupied by the checksum when appended to a packet."""
        return (self.spec.width + 7) // 8

    def compute(self, data: bytes) -> int:
        """Return the checksum of `data`."""
        spec = self.spec
        width = spec.width
        register = spec.init
        if spec.reflect_in:
            register = _reflect(register, width)
            for byte in data:
                index = (register ^ byte) & 0xFF
                register = (register >> 8) ^ self._table[index]
        else:
            shift = width - 8
            for byte in data:
                index = ((register >> shift) ^ byte) & 0xFF
                register = ((register << 8) & self._mask) ^ self._table[index]
        if spec.reflect_out != spec.reflect_in:
            register = _reflect(register, width)
        return (register ^ spec.xor_out) & self._mask

    def encode(self, data: bytes) -> bytes:
        """Append the big-endian checksum to `data` (a framed codeword)."""
        checksum = self.compute(data)
        return data + checksum.to_bytes(self.n_check_bytes, "big")

    def check(self, codeword: bytes) -> bool:
        """Return True when a codeword produced by :meth:`encode` is intact."""
        n = self.n_check_bytes
        if len(codeword) < n:
            return False
        data, trailer = codeword[:-n], codeword[-n:]
        return self.compute(data) == int.from_bytes(trailer, "big")

    def extract(self, codeword: bytes) -> bytes:
        """Strip the checksum trailer, returning the original payload.

        Raises:
            ValueError: if the codeword fails the CRC check.
        """
        if not self.check(codeword):
            raise ValueError(f"{self.spec.name}: corrupt codeword")
        return codeword[: -self.n_check_bytes]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CRC({self.spec.name})"


#: Catalogue entries with their standard check values.
_SPECS = [
    CrcSpec("CRC-8", 8, 0x07, 0x00, False, False, 0x00, 0xF4),
    CrcSpec("CRC-16/CCITT-FALSE", 16, 0x1021, 0xFFFF, False, False, 0x0000, 0x29B1),
    CrcSpec("CRC-32", 32, 0x04C11DB7, 0xFFFFFFFF, True, True, 0xFFFFFFFF, 0xCBF43926),
]

REGISTERED_SPECS: dict[str, CrcSpec] = {spec.name: spec for spec in _SPECS}

CRC8 = CRC(REGISTERED_SPECS["CRC-8"])
CRC16_CCITT = CRC(REGISTERED_SPECS["CRC-16/CCITT-FALSE"])
CRC32 = CRC(REGISTERED_SPECS["CRC-32"])


def crc_for(name: str) -> CRC:
    """Look up a pre-registered CRC by catalogue name.

    >>> crc_for("CRC-32").width
    32
    """
    try:
        spec = REGISTERED_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(REGISTERED_SPECS))
        raise KeyError(f"unknown CRC {name!r}; known: {known}") from None
    return CRC(spec)
