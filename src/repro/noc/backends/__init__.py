"""Engine backends: the reference object engine and the vectorised one.

See ``docs/performance.md`` for the architecture and
:mod:`repro.noc.backends.base` for the registry.  The fast engine is
re-exported lazily so importing this package never drags in the full
engine (and its numpy state machinery) unless a fast simulator is
actually requested.
"""

from __future__ import annotations

from repro.noc.backends.base import (
    BACKEND_REGISTRY,
    FAST_BACKEND,
    KNOWN_BACKENDS,
    OBJECT_BACKEND,
    EngineBackend,
    available_backends,
    register_backend,
    resolve_backend,
)

__all__ = [
    "BACKEND_REGISTRY",
    "EngineBackend",
    "FAST_BACKEND",
    "FastNocSimulator",
    "KNOWN_BACKENDS",
    "OBJECT_BACKEND",
    "available_backends",
    "register_backend",
    "resolve_backend",
]


def __getattr__(name: str):
    if name == "FastNocSimulator":
        from repro.noc.backends.fast import FastNocSimulator

        return FastNocSimulator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
