"""Experiment harnesses — one module per thesis figure.

Every module exposes a ``run(...)`` returning plain dataclasses/dicts with
the same series the thesis plots; the benchmarks in ``benchmarks/`` time
these harnesses, and EXPERIMENTS.md records their output against the
paper's numbers.  Parameters default to fast, CI-friendly sizes; pass
larger values to approach the thesis' settings.
"""

from repro.experiments import (
    fig3_1,
    fig4_4,
    fig4_5,
    fig4_6,
    fig4_8,
    fig4_9,
    fig4_10,
    fig4_11,
    fig5_3,
    grid_spread,
    islands,
    link_crashes,
    plots,
    report,
)

__all__ = [
    "fig3_1",
    "fig4_4",
    "fig4_5",
    "fig4_6",
    "fig4_8",
    "fig4_9",
    "fig4_10",
    "fig4_11",
    "fig5_3",
    "grid_spread",
    "islands",
    "link_crashes",
    "plots",
    "report",
]
