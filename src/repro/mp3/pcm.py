"""Synthetic PCM signal acquisition.

The thesis fed real audio through LAME; spectral *content* is all the
pipeline cares about, so a seeded generator producing controlled mixtures
of tones, chirps and noise exercises the same code paths — tonal content
drives the masking model, noise drives the rate loop — without any audio
assets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Granule size: spectral lines per frame (MP3 long-block granule).
GRANULE = 576
#: Nominal sample rate used for bit-rate accounting.
SAMPLE_RATE_HZ = 44_100


def synthesize_signal(
    n_samples: int,
    kind: str = "mixture",
    seed: int | None = None,
    amplitude: float = 0.5,
) -> np.ndarray:
    """Generate a float PCM signal in [-1, 1].

    Args:
        n_samples: length in samples.
        kind: ``"tone"`` (880 Hz sine), ``"chirp"`` (100 Hz -> 8 kHz sweep),
            ``"noise"`` (white), or ``"mixture"`` (tones + chirp + noise —
            the default torture test).
        seed: RNG seed for the noise components.
        amplitude: peak amplitude of the dominant component.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if not 0.0 < amplitude <= 1.0:
        raise ValueError(f"amplitude must be in (0, 1], got {amplitude}")
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / SAMPLE_RATE_HZ
    if kind == "tone":
        signal = amplitude * np.sin(2 * np.pi * 880.0 * t)
    elif kind == "chirp":
        f0, f1 = 100.0, 8000.0
        duration = n_samples / SAMPLE_RATE_HZ
        phase = 2 * np.pi * (f0 * t + (f1 - f0) * t**2 / (2 * duration))
        signal = amplitude * np.sin(phase)
    elif kind == "noise":
        signal = amplitude * rng.standard_normal(n_samples) / 3.0
    elif kind == "mixture":
        signal = (
            amplitude * 0.6 * np.sin(2 * np.pi * 440.0 * t)
            + amplitude * 0.3 * np.sin(2 * np.pi * 1320.0 * t)
            + amplitude * 0.2 * np.sin(2 * np.pi * (200.0 + 2000.0 * t) * t)
            + amplitude * 0.1 * rng.standard_normal(n_samples) / 3.0
        )
    else:
        raise ValueError(
            f"unknown signal kind {kind!r}; expected tone/chirp/noise/mixture"
        )
    return np.clip(signal, -1.0, 1.0)


def frames_from_signal(signal: np.ndarray, granule: int = GRANULE) -> np.ndarray:
    """Split a signal into fixed-size granules, zero-padding the tail.

    Returns an (n_frames, granule) array.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    if granule < 1:
        raise ValueError(f"granule must be >= 1, got {granule}")
    n_frames = -(-len(signal) // granule)
    padded = np.zeros(n_frames * granule)
    padded[: len(signal)] = signal
    return padded.reshape(n_frames, granule)


@dataclass
class PcmSource:
    """The Signal Acquisition stage of Fig 4-7, as a frame iterator.

    Attributes:
        n_frames: frames to produce.
        kind: signal family (see :func:`synthesize_signal`).
        seed: synthesis seed.
        granule: samples per frame.
    """

    n_frames: int
    kind: str = "mixture"
    seed: int = 0
    granule: int = GRANULE

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {self.n_frames}")
        signal = synthesize_signal(
            self.n_frames * self.granule, self.kind, self.seed
        )
        self._frames = frames_from_signal(signal, self.granule)

    def frame(self, index: int) -> np.ndarray:
        """The `index`-th granule of samples."""
        if not 0 <= index < self.n_frames:
            raise IndexError(f"frame {index} of {self.n_frames}")
        return self._frames[index]

    def all_frames(self) -> np.ndarray:
        """(n_frames, granule) view of the whole signal."""
        return self._frames

    @property
    def signal(self) -> np.ndarray:
        return self._frames.reshape(-1)
