"""Deterministic dimension-ordered (XY) routing — the fragility baseline.

Thesis §1 argues that a static route "would fail if even a single tile or
a link on the path is faulty".  This module makes that claim testable: an
:class:`XYRoutingProtocol` drives the same tiles and engine as the
stochastic protocol, but each unicast packet leaves a tile on exactly one
port — first along X to the destination's column, then along Y — so one
crash anywhere on that unique path is fatal.

The protocol is interface-compatible with
:class:`repro.core.protocol.StochasticProtocol` (the engine hands it the
current tile id), and broadcasts fall back to flooding since XY routing
has no broadcast story of its own.
"""

from __future__ import annotations

import numpy as np

from repro.core.packet import BROADCAST, Packet
from repro.core.protocol import ForwardDecision
from repro.noc.topology import Mesh2D


class XYRoutingProtocol:
    """Dimension-ordered routing on a 2-D mesh.

    Args:
        mesh: the grid the protocol routes on (needed for coordinates).
    """

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh
        self.name = "xy-routing"
        self.forward_probability = 1.0  # deterministic, single port

    @property
    def is_deterministic(self) -> bool:
        return True

    def next_hop(self, tile_id: int, destination: int) -> int | None:
        """The unique XY next hop, or None when already at the target."""
        self.mesh.validate_tile(tile_id)
        self.mesh.validate_tile(destination)
        row, col = self.mesh.coordinates(tile_id)
        dest_row, dest_col = self.mesh.coordinates(destination)
        if col != dest_col:
            step = 1 if dest_col > col else -1
            return self.mesh.tile_at(row, col + step)
        if row != dest_row:
            step = 1 if dest_row > row else -1
            return self.mesh.tile_at(row + step, col)
        return None

    def route(self, source: int, destination: int) -> list[int]:
        """The full XY path, source and destination inclusive."""
        path = [source]
        current = source
        while True:
            following = self.next_hop(current, destination)
            if following is None:
                return path
            path.append(following)
            current = following

    def decide(
        self,
        packet: Packet,
        neighbors: tuple[int, ...],
        rng: np.random.Generator,
        tile_id: int | None = None,
    ) -> list[ForwardDecision]:
        """Transmit on the single XY port (or every port for broadcast)."""
        if tile_id is None:
            raise ValueError(
                "XY routing needs the current tile id; run it under an "
                "engine that provides one"
            )
        if packet.destination == BROADCAST:
            return [
                ForwardDecision(port, neighbor, True)
                for port, neighbor in enumerate(neighbors)
            ]
        target = self.next_hop(tile_id, packet.destination)
        return [
            ForwardDecision(port, neighbor, neighbor == target)
            for port, neighbor in enumerate(neighbors)
        ]

    def expected_copies_per_round(self, degree: int) -> float:
        del degree  # a unicast leaves on exactly one port
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"XYRoutingProtocol({self.mesh!r})"
