"""Application / placement abstractions.

An :class:`Application` owns its IP cores and knows where they go; the
``run_on_noc`` / ``run_on_bus`` helpers build a simulator, deploy, run and
return the result.  Keeping deployment out of the IP classes lets one
application definition drive every experiment: NoC vs bus, different
forwarding probabilities, different fault configurations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.bus.simulator import BusResult, BusSimulator
from repro.noc.engine import NocSimulator, SimulationResult
from repro.noc.tile import IPCore


@dataclass(frozen=True)
class Placement:
    """One IP core assigned to one tile/module id."""

    tile_id: int
    ip: IPCore


class Application(ABC):
    """A set of IP cores plus their placement on the chip."""

    @abstractmethod
    def placements(self) -> list[Placement]:
        """All (tile, IP) assignments; tile ids must be distinct."""

    @property
    def critical_tiles(self) -> frozenset[int]:
        """Tiles whose loss is fatal to the application.

        Crash sweeps protect these (the thesis notes runs abort when
        "important modules" die — that failure mode is measured separately
        from the communication protocol's resilience).  By default every
        placement is critical; apps with duplicated IPs override this to
        just the un-replicated roots.
        """
        return frozenset(p.tile_id for p in self.placements())

    def deploy(self, simulator: NocSimulator | BusSimulator) -> None:
        """Mount every IP on its tile/module."""
        seen: set[int] = set()
        for placement in self.placements():
            if placement.tile_id in seen:
                raise ValueError(
                    f"duplicate placement on tile {placement.tile_id}"
                )
            seen.add(placement.tile_id)
            simulator.mount(placement.tile_id, placement.ip)

    @property
    def complete(self) -> bool:
        """Application-level completion (replica-aware)."""
        return all(p.ip.complete for p in self.placements())


def run_on_noc(
    app: Application,
    simulator: NocSimulator,
    max_rounds: int = 1000,
) -> SimulationResult:
    """Deploy `app` on a NoC simulator and run to completion.

    Completion is judged by the simulator's live-tile rule, which lets an
    app with duplicated IPs survive the crash of one replica.
    """
    app.deploy(simulator)
    return simulator.run(max_rounds=max_rounds)


def run_on_bus(
    app: Application,
    simulator: BusSimulator,
    max_transfers: int = 100_000,
) -> BusResult:
    """Deploy `app` on a bus simulator and run to completion."""
    app.deploy(simulator)
    return simulator.run(max_transfers=max_transfers)
