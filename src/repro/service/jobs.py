"""``JobQueue`` — asynchronous campaign submission over ``SweepRunner``.

The sweep runner is a blocking, one-campaign-at-a-time API: callers hand
it a batch and wait.  ``JobQueue`` puts an asyncio front-end on it so
many clients can submit campaigns concurrently and watch them finish:

* :meth:`JobQueue.submit` enqueues a batch of :class:`SimTask` and
  returns a job id immediately;
* jobs execute one at a time on a background worker, highest
  ``priority`` first (FIFO within a priority level), each batch running
  on the shared :class:`~repro.runners.SweepRunner` in a thread so the
  event loop stays free;
* :meth:`JobQueue.status` is a cheap snapshot; :meth:`JobQueue.stream`
  is an async generator of per-task :class:`TaskCompletion` events —
  late subscribers replay from the first completion, several consumers
  can stream the same job;
* :meth:`JobQueue.cancel` removes a queued job instantly and stops a
  running one at its next chunk boundary.

**Determinism and resume.**  Seeds are assigned over the *whole* batch
at submit time (:meth:`SweepRunner.assign_seeds`), then the job executes
in cancellable chunks — so a job's results are bit-identical to one
blocking :meth:`SweepRunner.run` call over the same tasks, regardless of
chunk size.  Because every completed cell is checkpointed to the
runner's cache (and written through to its :class:`ResultsDB` when one
is attached, PR 5's retry machinery underneath), resubmitting a
cancelled or crashed job resumes from the completed cells: they return
as ``source="cache"`` completions without re-executing.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, AsyncIterator, Iterable

from repro.runners import SimTask, SweepRunner, TaskCompletion

__all__ = ["JobQueue", "JobState", "JobStatus"]


class JobState(str, Enum):
    """Lifecycle of a submitted job.

    ``QUEUED -> RUNNING -> COMPLETED | FAILED | CANCELLED`` (a queued
    job may also go straight to ``CANCELLED``).
    """

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job will never transition again."""
        return self in (
            JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED
        )


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job.

    Attributes:
        job_id: the handle :meth:`JobQueue.submit` returned.
        label: free-form campaign label.
        state: current :class:`JobState`.
        priority: higher runs earlier.
        n_tasks: batch size.
        n_done: completions so far (cache hits and quarantined tasks
            included).
        n_cached: completions served from the pickle cache.
        n_poisoned: tasks quarantined by the fleet supervisor after
            repeatedly crashing their worker (``source="poisoned"``
            completions; see ``docs/operations.md``).
        error: ``repr`` of the failure for ``FAILED`` jobs, else ``None``.
    """

    job_id: str
    label: str
    state: JobState
    priority: int
    n_tasks: int
    n_done: int
    n_cached: int
    n_poisoned: int = 0
    error: str | None = None


@dataclass
class _Job:
    """Internal mutable job record (callers see :class:`JobStatus`)."""

    job_id: str
    label: str
    priority: int
    tasks: list[SimTask]
    state: JobState = JobState.QUEUED
    completions: list[TaskCompletion] = field(default_factory=list)
    error: BaseException | None = None
    cancel_requested: bool = False
    changed: asyncio.Event = field(default_factory=asyncio.Event)

    def snapshot(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            label=self.label,
            state=self.state,
            priority=self.priority,
            n_tasks=len(self.tasks),
            n_done=len(self.completions),
            n_cached=sum(
                1 for c in self.completions if c.source == "cache"
            ),
            n_poisoned=sum(
                1 for c in self.completions if c.source == "poisoned"
            ),
            error=repr(self.error) if self.error is not None else None,
        )

    def _mark_changed(self) -> None:
        """Wake streamers/waiters, then re-arm the event."""
        self.changed.set()
        self.changed = asyncio.Event()


class JobQueue:
    """An asyncio job queue in front of one :class:`SweepRunner`.

    Args:
        runner: the shared runner jobs execute on; ``None`` builds one
            from the remaining keyword arguments.
        n_workers / cache_dir / base_seed / db: forwarded to the built
            runner when `runner` is ``None`` (``db`` may be a
            :class:`repro.service.ResultsDB` or a path).
        chunk_size: tasks per cancellable :meth:`SweepRunner.run` call;
            defaults to ``4 * n_workers``.  Smaller chunks cancel
            sooner, larger ones amortise pool startup better.  Chunking
            never changes results (seeds are batch-global).

    Use as an async context manager (or call :meth:`start` /
    :meth:`close` explicitly)::

        async with JobQueue(n_workers=4, db="campaign.db") as queue:
            job_id = await queue.submit(tasks, priority=1)
            async for completion in queue.stream(job_id):
                ...
    """

    def __init__(
        self,
        runner: SweepRunner | None = None,
        *,
        n_workers: int = 1,
        cache_dir: str | None = None,
        base_seed: int | None = None,
        db: Any = None,
        chunk_size: int | None = None,
    ) -> None:
        if runner is None:
            runner = SweepRunner(
                n_workers=n_workers,
                cache_dir=cache_dir,
                base_seed=base_seed,
                db=db,
            )
        self.runner = runner
        if chunk_size is None:
            chunk_size = 4 * runner.n_workers
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._jobs: dict[str, _Job] = {}
        self._heap: list[tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = itertools.count()
        self._submitted = asyncio.Event()
        self._worker: asyncio.Task | None = None
        self._idle = asyncio.Event()
        self._idle.set()

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> "JobQueue":
        """Spawn the background worker (idempotent)."""
        if self._worker is None or self._worker.done():
            self._worker = asyncio.create_task(
                self._work_loop(), name="repro-job-queue"
            )
        return self

    async def close(self) -> None:
        """Stop the worker after the running chunk; queued jobs stay
        QUEUED (a later :meth:`start` on a new queue can resubmit)."""
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None

    async def __aenter__(self) -> "JobQueue":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ----------------------------------------------------------------- api

    async def submit(
        self,
        tasks: Iterable[SimTask],
        *,
        priority: int = 0,
        label: str = "",
    ) -> str:
        """Enqueue a campaign; returns its job id immediately.

        Seeds are assigned over the whole batch now (batch-position
        seeding), so results are bit-identical to a single blocking
        :meth:`SweepRunner.run` over the same tasks.
        """
        batch = self.runner.assign_seeds(tasks)
        if not batch:
            raise ValueError("cannot submit an empty job")
        seq = next(self._seq)
        job = _Job(
            job_id=f"job-{seq:04d}",
            label=label,
            priority=priority,
            tasks=batch,
        )
        self._jobs[job.job_id] = job
        heapq.heappush(self._heap, (-priority, seq, job.job_id))
        self._submitted.set()
        await self.start()
        return job.job_id

    def status(self, job_id: str) -> JobStatus:
        """A snapshot of one job (raises ``KeyError`` for unknown ids)."""
        return self._require(job_id).snapshot()

    def jobs(self) -> list[JobStatus]:
        """Snapshots of every known job, in submission order."""
        return [job.snapshot() for job in self._jobs.values()]

    async def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns True if it was still cancellable.

        A QUEUED job is cancelled instantly.  A RUNNING job stops at its
        next chunk boundary — already-completed cells remain
        checkpointed (cache + DB), so resubmitting the same tasks
        resumes rather than recomputes.  Terminal jobs return False.
        """
        job = self._require(job_id)
        if job.state.terminal:
            return False
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            job.state = JobState.CANCELLED
            job._mark_changed()
        return True

    async def stream(self, job_id: str) -> AsyncIterator[TaskCompletion]:
        """Yield the job's per-task completions as they land.

        Replays from the first completion for late subscribers, then
        follows live until the job reaches a terminal state.  Raises the
        job's error at the end of the stream for FAILED jobs.
        """
        job = self._require(job_id)
        cursor = 0
        while True:
            while cursor < len(job.completions):
                yield job.completions[cursor]
                cursor += 1
            if job.state.terminal:
                break
            changed = job.changed
            await changed.wait()
        if job.state is JobState.FAILED and job.error is not None:
            raise job.error

    async def join(self) -> None:
        """Wait until every submitted job has reached a terminal state."""
        while True:
            live = [
                job for job in self._jobs.values() if not job.state.terminal
            ]
            if not live:
                return
            waiters = [
                asyncio.ensure_future(job.changed.wait()) for job in live
            ]
            try:
                await asyncio.wait(
                    waiters, return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                for waiter in waiters:
                    waiter.cancel()

    async def result(self, job_id: str) -> list[Any]:
        """Wait for the job and return its results in task order.

        Raises the job's error for FAILED jobs and
        ``asyncio.CancelledError`` for cancelled ones.
        """
        job = self._require(job_id)
        while not job.state.terminal:
            await job.changed.wait()
        if job.state is JobState.FAILED and job.error is not None:
            raise job.error
        if job.state is JobState.CANCELLED:
            raise asyncio.CancelledError(f"{job_id} was cancelled")
        ordered: list[Any] = [None] * len(job.tasks)
        for completion in job.completions:
            ordered[completion.index] = completion.value
        return ordered

    # ------------------------------------------------------------- worker

    def _require(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            known = ", ".join(self._jobs) or "none"
            raise KeyError(
                f"unknown job id {job_id!r} (known: {known})"
            ) from None

    def _next_job(self) -> _Job | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state is JobState.QUEUED:
                return job
        return None

    async def _work_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                self._idle.set()
                self._submitted.clear()
                await self._submitted.wait()
                continue
            self._idle.clear()
            await self._run_job(job)

    async def _run_job(self, job: _Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = JobState.RUNNING
        job._mark_changed()
        # One campaign row spans the whole job, not one per chunk; the
        # queue owns its lifecycle and the chunks append into it.
        db = self.runner.db
        run_id = (
            db.begin_run(label=job.label or job.job_id,
                         n_tasks=len(job.tasks))
            if db is not None
            else None
        )

        def deliver(completion: TaskCompletion, base: int) -> None:
            # Called from the runner thread: re-index chunk-local
            # completions into batch coordinates and hand off to the loop.
            rebased = TaskCompletion(
                index=base + completion.index,
                task=completion.task,
                value=completion.value,
                source=completion.source,
                duration_s=completion.duration_s,
            )
            loop.call_soon_threadsafe(self._post, job, rebased)

        try:
            for start in range(0, len(job.tasks), self.chunk_size):
                if job.cancel_requested:
                    break
                chunk = job.tasks[start:start + self.chunk_size]
                await asyncio.to_thread(
                    self.runner.run,
                    chunk,
                    on_result=lambda c, base=start: deliver(c, base),
                    run_id=run_id,
                    index_base=start,
                )
        except asyncio.CancelledError:
            # The queue itself is closing; leave the job as-is so a new
            # queue can resubmit and resume from the checkpointed cells.
            if db is not None:
                db.finish_run(run_id, status="cancelled")
            job.state = JobState.QUEUED
            job._mark_changed()
            raise
        except Exception as error:  # noqa: BLE001 - surfaced via status/stream
            job.error = error
            job.state = JobState.FAILED
        else:
            job.state = (
                JobState.CANCELLED
                if job.cancel_requested
                else JobState.COMPLETED
            )
        if db is not None:
            db.finish_run(run_id, status=job.state.value)
        job._mark_changed()

    def _post(self, job: _Job, completion: TaskCompletion) -> None:
        job.completions.append(completion)
        job._mark_changed()
