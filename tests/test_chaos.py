"""Tests for the chaos campaign harness (repro.experiments.chaos)."""

import pytest

from repro.experiments import chaos
from repro.faults import BurstUpsets, LinkFlap, RampOverflow
from repro.runners import SweepRunner

_FAST = dict(repetitions=2, levels=(0.0, 0.9), max_rounds=48)


class TestScenarioFor:
    def test_axes_map_to_specs(self):
        assert chaos.scenario_for("burst_upsets", 0.4) == BurstUpsets(
            p_upset=0.4, start=chaos.ONSET_ROUND
        )
        assert isinstance(
            chaos.scenario_for("ramp_overflow", 0.4), RampOverflow
        )
        assert chaos.scenario_for("link_flap", 0.4) == LinkFlap(
            mtbf_rounds=10.0, mttr_rounds=5.0, fraction=0.4
        )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos axis"):
            chaos.scenario_for("solar_storm", 0.5)

    def test_run_validates_axes_before_sweeping(self):
        with pytest.raises(ValueError, match="unknown chaos axis"):
            chaos.run(kinds=("solar_storm",), **_FAST)


class TestCampaign:
    def test_report_shape_and_thresholds(self):
        report = chaos.run(kinds=("burst_upsets",), **_FAST)
        assert len(report.cells) == 2
        kinds = {cell.kind for cell in report.cells}
        assert kinds == {"burst_upsets"}
        # intensity 0 is a fault-free broadcast: always tolerated.
        baseline = next(c for c in report.cells if c.intensity == 0.0)
        assert baseline.coverage_mean == 1.0
        assert baseline.completion_rate == 1.0
        assert report.thresholds["burst_upsets"] is not None

    def test_total_upset_burst_degrades_coverage(self):
        report = chaos.run(
            kinds=("burst_upsets",),
            levels=(0.0, 1.0),
            repetitions=2,
            max_rounds=48,
        )
        lethal = next(c for c in report.cells if c.intensity == 1.0)
        # Every copy in flight is scrambled from the onset round on:
        # the rumor cannot spread past the tiles it reached by then.
        assert lethal.coverage_mean < 1.0
        assert lethal.completion_rate == 0.0
        assert report.thresholds["burst_upsets"] == 0.0

    def test_worker_count_does_not_change_metrics(self):
        serial = chaos.run(collect_metrics=True, **_FAST)
        pooled = chaos.run(collect_metrics=True, n_workers=4, **_FAST)
        for cell_s, cell_p in zip(serial.cells, pooled.cells):
            assert [m.to_json() for m in cell_s.run_metrics] == [
                m.to_json() for m in cell_p.run_metrics
            ]
        assert serial.thresholds == pooled.thresholds

    def test_drop_attribution_requires_instrumentation(self):
        plain = chaos.run(kinds=("link_flap",), **_FAST)
        assert all(cell.drops_by_scenario is None for cell in plain.cells)
        instrumented = chaos.run(
            kinds=("link_flap",), collect_metrics=True, **_FAST
        )
        flap = next(
            c for c in instrumented.cells if c.intensity == 0.9
        )
        assert "link_flap" in flap.drops_by_scenario

    def test_campaign_memoizes_through_the_cache(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        chaos.run(kinds=("burst_upsets",), runner=runner, **_FAST)
        executed = runner.tasks_executed
        assert executed > 0
        chaos.run(kinds=("burst_upsets",), runner=runner, **_FAST)
        assert runner.tasks_executed == executed  # all cells were hits

    def test_repetitions_validated(self):
        with pytest.raises(ValueError, match="repetitions"):
            chaos.run(repetitions=0)


class TestFormatReport:
    def test_mentions_every_cell_and_threshold(self):
        report = chaos.run(kinds=("burst_upsets", "link_flap"), **_FAST)
        text = chaos.format_report(report)
        assert "chaos degradation report" in text
        assert "burst_upsets" in text
        assert "link_flap" in text
        assert "tolerance thresholds" in text

    def test_marks_thresholds_below_the_sweep_floor(self):
        report = chaos.ChaosReport(
            cells=(),
            coverage_target=0.99,
            thresholds={"burst_upsets": None},
        )
        assert "below sweep floor" in chaos.format_report(report)
