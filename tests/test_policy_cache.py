"""Regression tests: policy configuration participates in every cache key.

Satellite of the policies PR: two sweeps differing only in forwarding
policy must never share an on-disk cache entry — neither at the
``SimConfig.cache_token`` level nor at the ``SimTask.cache_key`` level.
"""

import pytest

from repro.core.protocol import FloodingProtocol, StochasticProtocol
from repro.experiments.policy_compare import _policy_once
from repro.noc.config import SimConfig, describe_protocol
from repro.noc.topology import Mesh2D
from repro.policies import (
    AdaptiveProbabilityPolicy,
    BernoulliPolicy,
    CounterGossipPolicy,
    FloodPolicy,
    LegacyProtocolPolicy,
    PolicySpec,
)
from repro.runners import SimTask, SweepRunner, canonical, digest

ALL_SPECS = (
    PolicySpec.of("bernoulli", forward_probability=0.5),
    PolicySpec.of("flood"),
    PolicySpec.of("counter", k=2, forward_probability=1.0),
    PolicySpec.of("adaptive"),
)


class TestSimConfigTokens:
    def test_every_policy_pair_gets_a_distinct_token(self):
        tokens = {
            SimConfig(Mesh2D(3, 3), spec).cache_token() for spec in ALL_SPECS
        }
        assert len(tokens) == len(ALL_SPECS)

    def test_policy_parameters_change_the_token(self):
        base = SimConfig(Mesh2D(3, 3), CounterGossipPolicy(k=2))
        other = SimConfig(Mesh2D(3, 3), CounterGossipPolicy(k=3))
        assert base.cache_token() != other.cache_token()

    def test_spec_and_equivalent_instance_share_a_token(self):
        by_spec = SimConfig(
            Mesh2D(3, 3), PolicySpec.of("bernoulli", forward_probability=0.5)
        )
        by_instance = SimConfig(Mesh2D(3, 3), BernoulliPolicy(0.5))
        assert by_spec.cache_token() == by_instance.cache_token()

    def test_policy_and_legacy_protocol_never_alias(self):
        # Same Bernoulli semantics, different config types: distinct
        # tokens are correct because the engine paths are distinct too.
        legacy = SimConfig(Mesh2D(3, 3), StochasticProtocol(0.5))
        native = SimConfig(Mesh2D(3, 3), BernoulliPolicy(0.5))
        assert legacy.cache_token() != native.cache_token()

    def test_legacy_describer_is_unchanged(self):
        # Pin the pre-policy describer output: existing on-disk caches of
        # legacy-protocol sweeps stay valid across this refactor.
        assert describe_protocol(StochasticProtocol(0.5)) == (
            "StochasticProtocol",
            0.5,
            "stochastic(p=0.5)",
        )
        assert describe_protocol(FloodingProtocol()) == (
            "FloodingProtocol",
            1.0,
            "flooding",
        )


class TestCanonicalForms:
    def test_spec_and_instance_canonicalise_identically(self):
        policy = AdaptiveProbabilityPolicy(p_base=0.6)
        assert canonical(policy) == canonical(policy.spec)
        assert digest(policy) == digest(policy.spec)

    def test_legacy_adapter_canonicalises_as_its_protocol(self):
        protocol = StochasticProtocol(0.5)
        assert canonical(LegacyProtocolPolicy(protocol)) == canonical(protocol)

    def test_distinct_specs_distinct_digests(self):
        digests = {digest(spec) for spec in ALL_SPECS}
        assert len(digests) == len(ALL_SPECS)


class TestTaskKeys:
    def _task(self, spec: PolicySpec) -> SimTask:
        return SimTask.call(
            _policy_once,
            side=3,
            spec=spec,
            p_upset=0.0,
            p_overflow=0.0,
            n_dead_links=0,
            max_rounds=16,
            seed=1,
        )

    def test_policies_never_share_a_cache_key(self):
        keys = {self._task(spec).cache_key() for spec in ALL_SPECS}
        assert len(keys) == len(ALL_SPECS)

    def test_identical_spec_rebuilt_hits(self):
        rebuilt = PolicySpec.of("counter", k=2, forward_probability=1.0)
        assert (
            self._task(ALL_SPECS[2]).cache_key()
            == self._task(rebuilt).cache_key()
        )

    def test_cached_sweep_never_aliases_across_policies(self, cache_dir):
        """The end-to-end regression: run flood then counter with otherwise
        identical configs through a shared cache — both must execute, and a
        warm rerun must return each policy its own numbers."""
        flood_task = self._task(PolicySpec.of("flood"))
        counter_task = self._task(
            PolicySpec.of("counter", k=1, forward_probability=1.0)
        )
        cold = SweepRunner(cache_dir=cache_dir)
        flood_cold, counter_cold = cold.run([flood_task, counter_task])
        assert cold.tasks_executed == 2  # no aliasing on the cold pass
        assert flood_cold != counter_cold  # genuinely different physics

        warm = SweepRunner(cache_dir=cache_dir)
        flood_warm, counter_warm = warm.run([flood_task, counter_task])
        assert warm.tasks_executed == 0
        assert warm.cache_hits == 2
        assert flood_warm == flood_cold
        assert counter_warm == counter_cold


class TestLoudFailures:
    def test_unregistered_policy_object_still_keys_by_spec(self):
        # A policy instance used directly as a task param keys by its
        # spec, so unknown *objects* (not via SimConfig) cannot silently
        # produce unstable keys.
        assert digest(FloodPolicy()) == digest(PolicySpec.of("flood"))

    def test_junk_params_still_raise(self):
        with pytest.raises(TypeError):
            canonical(object())
