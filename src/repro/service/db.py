"""``ResultsDB`` — the durable, queryable results + provenance store.

The pickle cache (:mod:`repro.runners.cache`) answers one question fast:
"has this exact task already run?".  It cannot answer any other —
results are opaque blobs named by content hash, so auditing a campaign
means re-loading every pickle.  ``ResultsDB`` is the durable record
behind the cache: a single SQLite file (WAL mode, safe for concurrent
writers) holding every completed task's result, the full
:meth:`SimConfig.describe` provenance of the configuration that produced
it, and the per-round metrics time series of instrumented runs — all
queryable with plain SQL (``repro db query``) instead of pickle loads.

Division of labor:

* the **pickle cache stays the hot read path** — :class:`SweepRunner`
  still answers warm-cache lookups from disk pickles, byte-identical to
  before;
* the **database is the write-through system of record** — every
  completed task (executed *or* served from cache) appends a row with
  the same ``cache_key`` the pickle file uses, so the two stores
  cross-reference, and the result is stored both as the exact pickle
  blob (bit-identical to the cache path) and, when expressible, as
  queryable JSON.

Writes happen in the coordinating process only (workers return results
to the parent, which records them), so contention is low; WAL mode plus
a generous ``busy_timeout`` make concurrent campaigns from separate
processes safe.  On top of the SQLite-level timeout, every write
retries a transient ``sqlite3.OperationalError`` ("database is locked"
/ "database is busy") a bounded number of times with exponential
backoff — a campaign row is not lost to a momentarily greedy sibling
writer (see ``docs/operations.md``).
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runners.runner import SimTask

from repro.service.schema import SCHEMA_VERSION, migrate, schema_version

__all__ = ["ResultsDB", "as_results_db"]

#: Statement heads :meth:`ResultsDB.query` accepts — reads only.
_READ_ONLY_HEADS = ("select", "with", "pragma", "explain", "values")


def _jsonify(value: Any) -> Any:
    """Best-effort JSON-safe form of a task result (or raise TypeError).

    Tuples become lists, numpy scalars become Python numbers, and
    anything exposing ``to_json_dict`` (``RunMetrics``,
    ``MetricsSummary``, ...) serialises through it; everything else must
    already be JSON-native or the caller falls back to pickle-only
    storage.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    to_json = getattr(value, "to_json_dict", None)
    if callable(to_json):
        return to_json()
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    item = getattr(value, "item", None)
    if callable(item) and type(value).__module__ == "numpy":
        return _jsonify(item())
    raise TypeError(f"not JSON-expressible: {type(value).__name__}")


def _result_json(value: Any) -> str | None:
    """`value` as deterministic JSON, or None when not expressible."""
    try:
        return json.dumps(_jsonify(value), sort_keys=True)
    except (TypeError, ValueError):
        return None


def _iter_run_metrics(value: Any) -> Iterable[Any]:
    """Yield every ``RunMetrics`` in a task result (top level or tuple)."""
    from repro.metrics import RunMetrics

    if isinstance(value, RunMetrics):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            if isinstance(item, RunMetrics):
                yield item


def _find_config(params: Mapping[str, Any]) -> Any | None:
    """The first ``SimConfig`` among a task's parameters, if any."""
    from repro.noc.config import SimConfig

    for value in params.values():
        if isinstance(value, SimConfig):
            return value
    return None


def _params_json(params: Mapping[str, Any]) -> str:
    """A task's parameters as deterministic JSON (repr fallback).

    Provenance, not a cache key: non-JSON values (topologies, configs,
    specs) are recorded by ``repr`` so the row stays human-auditable;
    the exact content hash lives in ``cache_key``.
    """

    return json.dumps(
        {key: params[key] for key in sorted(params)},
        sort_keys=True,
        default=repr,
    )


class ResultsDB:
    """A SQLite-backed store of sweep results and their provenance.

    Args:
        path: database file (created, with parents, if missing).
            ``":memory:"`` builds a private in-memory store — handy for
            tests, invisible to other processes.
        timeout_s: how long a writer waits on a locked database before
            failing; generous by default because WAL writers only block
            one another for the duration of a single row append.
        lock_retries: times a write that still fails with a transient
            "database is locked"/"busy" ``OperationalError`` (after the
            SQLite-level `timeout_s` expired) is retried before the
            error propagates.
        lock_backoff_s: base delay between lock retries; retry *k*
            waits ``lock_backoff_s * 2**(k-1)`` seconds.

    Attributes:
        lock_retries_used: transient lock errors absorbed by retrying —
            a contention gauge for operators (``docs/operations.md``).

    The instance is thread-safe (one internal lock around its
    connection) and usable from several processes at once thanks to WAL
    journaling.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        timeout_s: float = 30.0,
        lock_retries: int = 5,
        lock_backoff_s: float = 0.05,
    ) -> None:
        if lock_retries < 0:
            raise ValueError(f"lock_retries must be >= 0, got {lock_retries}")
        if lock_backoff_s < 0:
            raise ValueError(
                f"lock_backoff_s must be >= 0, got {lock_backoff_s}"
            )
        self.lock_retries = lock_retries
        self.lock_backoff_s = lock_backoff_s
        self.lock_retries_used = 0
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            self.path, timeout=timeout_s, check_same_thread=False
        )
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            if self.path != ":memory:":
                self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
            self._connection.execute("PRAGMA foreign_keys = ON")
            migrate(self._connection)

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Close the connection (the instance is unusable afterwards)."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        """The database's migration level (see ``repro.service.schema``)."""
        with self._lock:
            return schema_version(self._connection)

    # ------------------------------------------------------------ recording

    def _write(self, operation: Any) -> Any:
        """Run `operation` in a write transaction, retrying lock errors.

        A transient ``sqlite3.OperationalError`` ("database is locked" /
        "database is busy" — a sibling process holding the write lock
        past our ``timeout_s``) rolls the transaction back and retries
        with bounded exponential backoff; any other operational error,
        or exhaustion of the `lock_retries` budget, propagates.  The
        transaction context means a retried `operation` always starts
        from a clean slate, so retries cannot double-append rows.
        """
        for attempt in range(self.lock_retries + 1):
            try:
                with self._lock, self._connection:
                    return operation()
            except sqlite3.OperationalError as error:
                message = str(error).lower()
                transient = "locked" in message or "busy" in message
                if not transient or attempt >= self.lock_retries:
                    raise
                self.lock_retries_used += 1
                time.sleep(self.lock_backoff_s * (2**attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def begin_run(self, label: str = "", n_tasks: int = 0) -> int:
        """Open a campaign row; returns its ``run_id``."""
        cursor = self._write(
            lambda: self._connection.execute(
                "INSERT INTO runs (label, status, n_tasks, started_at) "
                "VALUES (?, 'running', ?, ?)",
                (label, n_tasks, time.time()),
            )
        )
        return int(cursor.lastrowid)

    def finish_run(
        self,
        run_id: int,
        status: str = "completed",
        *,
        n_tasks: int | None = None,
    ) -> None:
        """Stamp a campaign's terminal `status` and finish time.

        Adaptive campaigns (certifications) don't know their task count
        up front; passing `n_tasks` updates the count recorded by
        :meth:`begin_run` at close time.
        """
        def operation() -> None:
            if n_tasks is None:
                self._connection.execute(
                    "UPDATE runs SET status = ?, finished_at = ? "
                    "WHERE run_id = ?",
                    (status, time.time(), run_id),
                )
            else:
                self._connection.execute(
                    "UPDATE runs SET status = ?, finished_at = ?, "
                    "n_tasks = ? WHERE run_id = ?",
                    (status, time.time(), n_tasks, run_id),
                )

        self._write(operation)

    def record_task(
        self,
        run_id: int,
        index: int,
        task: "SimTask",
        value: Any,
        *,
        source: str = "executed",
        duration_s: float | None = None,
        status: str = "ok",
    ) -> int:
        """Append one completed task: result, provenance and metrics.

        The result is stored as the exact pickle blob (so
        :meth:`result_for` round-trips bit-identically with the pickle
        cache) plus queryable JSON when expressible.  A ``SimConfig``
        among the parameters is interned into ``configs`` keyed by its
        ``cache_token``; any :class:`repro.metrics.RunMetrics` in the
        result fans out into ``round_metrics`` and ``scenario_drops``
        rows.  `status` is ``"ok"`` for ordinary completions or
        ``"poisoned"`` for tasks quarantined by the fleet supervisor
        (their `value` is the diagnostics record).  Returns the new
        ``task_id``.
        """
        params = dict(task.params)
        config = _find_config(params)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

        def operation() -> int:
            token = None
            if config is not None:
                token = self._intern_config(config)
            cursor = self._connection.execute(
                "INSERT INTO tasks (run_id, task_index, cache_key, fn, "
                "label, seed, params_json, config_token, source, "
                "duration_s, result_pickle, result_json, status, "
                "created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    index,
                    task.cache_key(),
                    task.fn,
                    task.label,
                    None if task.seed is None else str(task.seed),
                    _params_json(params),
                    token,
                    source,
                    duration_s,
                    blob,
                    _result_json(value),
                    status,
                    time.time(),
                ),
            )
            task_id = int(cursor.lastrowid)
            for metrics_index, metrics in enumerate(_iter_run_metrics(value)):
                self._record_metrics(task_id, metrics_index, metrics)
            return task_id

        return self._write(operation)

    def _intern_config(self, config: Any) -> str:
        """Upsert one ``SimConfig`` provenance row; returns its token."""
        token = config.cache_token()
        scenario = (
            type(config.scenario).__name__
            if config.scenario is not None
            else None
        )
        self._connection.execute(
            "INSERT OR IGNORE INTO configs "
            "(config_token, backend, scenario, describe_json, first_seen) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                token,
                config.backend,
                scenario,
                json.dumps(config.describe(), default=repr, sort_keys=True),
                time.time(),
            ),
        )
        return token

    def _record_metrics(
        self, task_id: int, metrics_index: int, metrics: Any
    ) -> None:
        """Fan one ``RunMetrics`` out into its per-round and drop rows."""
        self._connection.executemany(
            "INSERT INTO round_metrics (task_id, metrics_index, "
            "round_index, informed_tiles, transmissions, deliveries, "
            "dead_link_drops, overflow_drops, crc_drops, upsets_injected, "
            "energy_j, active_scenarios) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    task_id,
                    metrics_index,
                    sample.round_index,
                    sample.informed_tiles,
                    sample.transmissions,
                    sample.deliveries,
                    sample.dead_link_drops,
                    sample.overflow_drops,
                    sample.crc_drops,
                    sample.upsets_injected,
                    sample.energy_j,
                    json.dumps(list(sample.active_scenarios)),
                )
                for sample in metrics.samples
            ],
        )
        if metrics_index == 0:
            # Drop attribution rows key by (task, scenario, kind); only
            # the first RunMetrics of a multi-metrics result feeds them.
            self._connection.executemany(
                "INSERT INTO scenario_drops (task_id, scenario, drop_kind, "
                "count) VALUES (?, ?, ?, ?)",
                [
                    (task_id, scenario, kind, count)
                    for scenario, kinds in sorted(
                        metrics.drops_by_scenario().items()
                    )
                    for kind, count in sorted(kinds.items())
                ],
            )

    def record_certificate(
        self, certificate: Any, *, run_id: int | None = None
    ) -> int:
        """Append one :class:`repro.stats.Certificate`; returns its id.

        The claim spec and decision trajectory are stored as
        deterministic JSON next to the queryable verdict columns, so
        ``repro db query`` can filter certificates without unpickling
        anything.  `run_id` ties the certificate to the campaign row
        whose task rows fed the decision (nullable: async certifications
        span several job-queue campaign rows).
        """
        claim = certificate.claim
        payload = certificate.to_json_dict()
        cursor = self._write(
            lambda: self._connection.execute(
                "INSERT INTO certificates (run_id, label, claim_kind, "
                "metric, claim_json, verdict, confidence, n_observed, "
                "budget, base_seed, trajectory_json, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    certificate.label,
                    claim.kind,
                    claim.metric,
                    json.dumps(payload["claim"], sort_keys=True),
                    certificate.verdict.value,
                    certificate.confidence,
                    certificate.n_observed,
                    certificate.budget,
                    None
                    if certificate.base_seed is None
                    else str(certificate.base_seed),
                    json.dumps(payload["trajectory"], sort_keys=True),
                    time.time(),
                ),
            )
        )
        return int(cursor.lastrowid)

    # -------------------------------------------------------------- reading

    def query(
        self, sql: str, params: Sequence[Any] = ()
    ) -> list[dict[str, Any]]:
        """Run one read-only SQL statement, returning rows as dicts.

        Only ``SELECT``/``WITH``/``VALUES``/``PRAGMA``/``EXPLAIN``
        statements are accepted; mutations must go through the recording
        API so provenance stays consistent.
        """
        head = sql.lstrip().split(None, 1)[0].lower() if sql.strip() else ""
        if head not in _READ_ONLY_HEADS:
            raise ValueError(
                f"query() is read-only (SELECT/WITH/VALUES/PRAGMA/EXPLAIN); "
                f"got a {head.upper() or 'empty'} statement"
            )
        with self._lock:
            cursor = self._connection.execute(sql, tuple(params))
            return [dict(row) for row in cursor.fetchall()]

    def runs(self) -> list[dict[str, Any]]:
        """Every campaign row, oldest first."""
        return self.query("SELECT * FROM runs ORDER BY run_id")

    def certificates(
        self, *, run_id: int | None = None
    ) -> list[dict[str, Any]]:
        """Certificate rows, oldest first (optionally one campaign's)."""
        if run_id is None:
            return self.query("SELECT * FROM certificates ORDER BY cert_id")
        return self.query(
            "SELECT * FROM certificates WHERE run_id = ? ORDER BY cert_id",
            (run_id,),
        )

    def results_for_run(self, run_id: int) -> list[Any]:
        """The run's results in task order, unpickled bit-identically."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT result_pickle FROM tasks WHERE run_id = ? "
                "ORDER BY task_index",
                (run_id,),
            ).fetchall()
        return [pickle.loads(row["result_pickle"]) for row in rows]

    def result_for(self, cache_key: str) -> Any:
        """The most recent result recorded under `cache_key`.

        Raises:
            KeyError: no task row carries that key.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT result_pickle FROM tasks WHERE cache_key = ? "
                "ORDER BY task_id DESC LIMIT 1",
                (cache_key,),
            ).fetchone()
        if row is None:
            raise KeyError(cache_key)
        return pickle.loads(row["result_pickle"])

    # ------------------------------------------------------------ housekeeping

    def export(
        self,
        table: str = "tasks",
        *,
        fmt: str = "json",
    ) -> str:
        """Dump one table as deterministic JSON lines or CSV text.

        Binary columns (``result_pickle``) are elided — exports are for
        analysis pipelines, the blobs stay in the database.  CSV columns
        are emitted in sorted name order (the union across rows), so the
        header line is stable across schema migrations and row shapes.
        """
        if table not in (
            "runs", "configs", "tasks", "round_metrics", "scenario_drops",
            "certificates",
        ):
            raise ValueError(f"unknown table {table!r}")
        if fmt not in ("json", "csv"):
            raise ValueError(f"fmt must be 'json' or 'csv', got {fmt!r}")
        rows = self.query(f"SELECT * FROM {table} ORDER BY 1")  # noqa: S608
        for row in rows:
            row.pop("result_pickle", None)
        if fmt == "json":
            return "\n".join(
                json.dumps(row, sort_keys=True, default=repr) for row in rows
            ) + ("\n" if rows else "")
        if not rows:
            return ""
        columns = sorted({column for row in rows for column in row})
        lines = [",".join(columns)]
        for row in rows:
            lines.append(
                ",".join(_csv_field(row.get(column)) for column in columns)
            )
        return "\n".join(lines) + "\n"

    def gc(self, *, keep_runs: int | None = None) -> int:
        """Prune old campaigns, keeping the `keep_runs` most recent.

        Cascades to the runs' tasks, metrics and drop rows, then drops
        orphaned config provenance and vacuums the file.  ``None`` keeps
        everything (a no-op returning 0).  Returns the number of runs
        deleted.
        """
        if keep_runs is None:
            return 0
        if keep_runs < 0:
            raise ValueError(f"keep_runs must be >= 0, got {keep_runs}")
        def operation() -> int:
            cursor = self._connection.execute(
                "DELETE FROM runs WHERE run_id NOT IN "
                "(SELECT run_id FROM runs ORDER BY run_id DESC LIMIT ?)",
                (keep_runs,),
            )
            self._connection.execute(
                "DELETE FROM configs WHERE config_token NOT IN "
                "(SELECT DISTINCT config_token FROM tasks "
                " WHERE config_token IS NOT NULL)"
            )
            return cursor.rowcount

        removed = self._write(operation)
        if removed:
            with self._lock:
                self._connection.execute("VACUUM")
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultsDB({self.path!r}, schema=v{SCHEMA_VERSION})"


def _csv_field(value: Any) -> str:
    """One CSV cell, quoted when it contains a delimiter."""
    text = "" if value is None else str(value)
    if any(ch in text for ch in ",\"\n"):
        text = '"' + text.replace('"', '""') + '"'
    return text


def as_results_db(
    db: "ResultsDB | str | os.PathLike[str] | None",
) -> "ResultsDB | None":
    """Normalise a ``db`` argument: path-likes open a :class:`ResultsDB`."""
    if db is None or isinstance(db, ResultsDB):
        return db
    return ResultsDB(db)
