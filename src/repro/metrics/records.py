"""Typed, picklable containers for per-round simulation metrics.

A :class:`RunMetrics` is the structured product of one instrumented
simulation: an ordered tuple of :class:`RoundSample` rows, one per gossip
round, each capturing the quantities the thesis evaluates (§3.3) —
informed-tile coverage, transmissions, the loss breakdown by failure
mode, cumulative Eq. 3 energy — plus a send-buffer occupancy histogram.

Both types are frozen dataclasses built from primitives only, so they

* **pickle** — they ride through :class:`repro.runners.SweepRunner`'s
  process pool and on-disk result cache unchanged;
* **export deterministically** — :meth:`RunMetrics.to_json` emits
  byte-identical text for equal metrics (sorted keys, canonical float
  repr), which is what lets tests assert that a sweep's metrics are
  bit-identical across worker counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RoundSample:
    """The metrics of one gossip round, sampled at the round boundary.

    Counters (``transmissions``, drops, ``deliveries``,
    ``upsets_injected``) are *per-round* increments; ``informed_tiles``
    and ``energy_j`` are *cumulative* — the network state at the end of
    the round.

    Attributes:
        round_index: the gossip round this row describes.
        informed_tiles: tiles holding or having originated any message
            by the end of the round (rumor-spreading coverage).
        transmissions: link traversals delivered to a far-end latch this
            round.
        deliveries: first intact copies handed to tile IPs this round.
        dead_link_drops: transmissions lost to crashed links this round.
        overflow_drops: arrivals dropped by full input buffers this round.
        crc_drops: corrupt arrivals caught by tile CRCs this round.
        upsets_injected: in-flight copies scrambled by data upsets this
            round.
        energy_j: cumulative Eq. 3 communication energy through this
            round.
        buffer_occupancy: histogram of live-tile send-buffer sizes at
            the end of the round, as sorted ``(occupancy, n_tiles)``
            pairs.
        active_scenarios: labels of the dynamic-fault scenario phases
            active during the round (``repro.faults.scenarios``); empty
            for scenario-free runs and dormant rounds.  Lets the drop
            breakdown attribute losses to the scenario causing them.
    """

    round_index: int
    informed_tiles: int
    transmissions: int
    deliveries: int
    dead_link_drops: int
    overflow_drops: int
    crc_drops: int
    upsets_injected: int
    energy_j: float
    buffer_occupancy: tuple[tuple[int, int], ...] = ()
    active_scenarios: tuple[str, ...] = ()

    @property
    def drops_total(self) -> int:
        """All packets lost this round, over every failure mode."""
        return self.dead_link_drops + self.overflow_drops + self.crc_drops

    @property
    def buffered_packets(self) -> int:
        """Total packets sitting in send-buffers at the end of the round."""
        return sum(size * count for size, count in self.buffer_occupancy)

    @property
    def max_buffer_occupancy(self) -> int:
        """The fullest send-buffer at the end of the round (0 when empty)."""
        if not self.buffer_occupancy:
            return 0
        return max(size for size, _ in self.buffer_occupancy)

    def to_json_dict(self) -> dict:
        """A JSON-serialisable dict of every field (histogram as pairs)."""
        return {
            "round_index": self.round_index,
            "informed_tiles": self.informed_tiles,
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "dead_link_drops": self.dead_link_drops,
            "overflow_drops": self.overflow_drops,
            "crc_drops": self.crc_drops,
            "upsets_injected": self.upsets_injected,
            "energy_j": self.energy_j,
            "buffer_occupancy": [list(pair) for pair in self.buffer_occupancy],
            "active_scenarios": list(self.active_scenarios),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RoundSample":
        """Rebuild a sample from :meth:`to_json_dict` output."""
        return cls(
            round_index=int(data["round_index"]),
            informed_tiles=int(data["informed_tiles"]),
            transmissions=int(data["transmissions"]),
            deliveries=int(data["deliveries"]),
            dead_link_drops=int(data["dead_link_drops"]),
            overflow_drops=int(data["overflow_drops"]),
            crc_drops=int(data["crc_drops"]),
            upsets_injected=int(data["upsets_injected"]),
            energy_j=float(data["energy_j"]),
            buffer_occupancy=tuple(
                (int(size), int(count))
                for size, count in data.get("buffer_occupancy", [])
            ),
            active_scenarios=tuple(
                str(label) for label in data.get("active_scenarios", [])
            ),
        )


#: Column order of :meth:`RunMetrics.to_csv` (histogram reduced to
#: buffered-packet total and max occupancy; the full histogram is
#: JSON-only).
CSV_COLUMNS = (
    "round_index",
    "informed_tiles",
    "transmissions",
    "deliveries",
    "dead_link_drops",
    "overflow_drops",
    "crc_drops",
    "upsets_injected",
    "energy_j",
    "buffered_packets",
    "max_buffer_occupancy",
)


@dataclass(frozen=True)
class RunMetrics:
    """The complete per-round time series of one instrumented run.

    Attributes:
        n_tiles: tiles in the simulated topology.
        samples: one :class:`RoundSample` per executed round, in order.
    """

    n_tiles: int
    samples: tuple[RoundSample, ...] = field(default_factory=tuple)

    @property
    def rounds(self) -> int:
        """Number of rounds the run executed (and therefore sampled)."""
        return len(self.samples)

    @property
    def coverage(self) -> list[int]:
        """Informed-tile count at the end of each round."""
        return [sample.informed_tiles for sample in self.samples]

    @property
    def coverage_fraction(self) -> list[float]:
        """Coverage normalised by the tile count, in [0, 1] per round."""
        return [s.informed_tiles / self.n_tiles for s in self.samples]

    @property
    def transmissions_per_round(self) -> list[int]:
        """Delivered link traversals per round."""
        return [sample.transmissions for sample in self.samples]

    @property
    def total_transmissions(self) -> int:
        """Delivered link traversals over the whole run."""
        return sum(sample.transmissions for sample in self.samples)

    @property
    def total_energy_j(self) -> float:
        """Final cumulative Eq. 3 energy (0.0 for an empty run)."""
        if not self.samples:
            return 0.0
        return self.samples[-1].energy_j

    @property
    def drops_by_kind(self) -> dict[str, int]:
        """Whole-run loss totals keyed by failure mode."""
        return {
            "dead_link": sum(s.dead_link_drops for s in self.samples),
            "overflow": sum(s.overflow_drops for s in self.samples),
            "crc": sum(s.crc_drops for s in self.samples),
        }

    def drops_by_scenario(self) -> dict[str, dict[str, int]]:
        """Loss breakdown attributed to the active scenario phases.

        Each round's drops are credited to the scenario phases active
        that round (joined with ``+`` when several overlap); rounds with
        no active scenario fall under ``"baseline"``.  This is what a
        chaos campaign reads to say "these overflow drops came from the
        ramp, those CRC drops from the upset burst".
        """
        out: dict[str, dict[str, int]] = {}
        for sample in self.samples:
            key = (
                "+".join(sample.active_scenarios)
                if sample.active_scenarios
                else "baseline"
            )
            bucket = out.setdefault(
                key, {"dead_link": 0, "overflow": 0, "crc": 0}
            )
            bucket["dead_link"] += sample.dead_link_drops
            bucket["overflow"] += sample.overflow_drops
            bucket["crc"] += sample.crc_drops
        return out

    def saturation_round(self) -> int | None:
        """First round at which every tile was informed, or ``None``."""
        for sample in self.samples:
            if sample.informed_tiles >= self.n_tiles:
                return sample.round_index
        return None

    # ---------------------------------------------------------------- export

    def to_json_dict(self) -> dict:
        """A JSON-serialisable dict of the whole time series."""
        return {
            "schema": "repro.metrics/RunMetrics/v1",
            "n_tiles": self.n_tiles,
            "rounds": self.rounds,
            "samples": [sample.to_json_dict() for sample in self.samples],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic JSON text: equal metrics give identical bytes."""
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunMetrics":
        """Rebuild metrics from :meth:`to_json_dict` output.

        Raises:
            ValueError: if the document carries a different ``schema``
                marker than the one this class writes.
        """
        schema = data.get("schema", "repro.metrics/RunMetrics/v1")
        if schema != "repro.metrics/RunMetrics/v1":
            raise ValueError(
                f"unsupported metrics schema {schema!r}; expected "
                "'repro.metrics/RunMetrics/v1'"
            )
        return cls(
            n_tiles=int(data["n_tiles"]),
            samples=tuple(
                RoundSample.from_json_dict(row) for row in data["samples"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunMetrics":
        """Rebuild metrics from :meth:`to_json` output."""
        return cls.from_json_dict(json.loads(text))

    def to_csv(self) -> str:
        """One CSV row per round (see :data:`CSV_COLUMNS` for the header)."""
        lines = [",".join(CSV_COLUMNS)]
        for sample in self.samples:
            row = (
                sample.round_index,
                sample.informed_tiles,
                sample.transmissions,
                sample.deliveries,
                sample.dead_link_drops,
                sample.overflow_drops,
                sample.crc_drops,
                sample.upsets_injected,
                repr(sample.energy_j),
                sample.buffered_packets,
                sample.max_buffer_occupancy,
            )
            lines.append(",".join(str(cell) for cell in row))
        return "\n".join(lines) + "\n"
