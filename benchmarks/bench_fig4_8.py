"""Benchmark E6: Fig 4-8 — MP3 latency over the (p x p_upset) plane."""

from repro.experiments import fig4_8


def test_fig4_8_latency_contour(benchmark, shape_report):
    cells = benchmark(
        fig4_8.run,
        probabilities=(1.0, 0.5, 0.25),
        upset_levels=(0.0, 0.4, 0.7),
        n_frames=6,
        granule=144,
        repetitions=2,
        max_rounds=1500,
    )
    grid = {(c.forward_probability, c.p_upset): c for c in cells}
    best = grid[(1.0, 0.0)].latency_rounds
    # The contour's monotone structure: latency rises as p falls and as
    # p_upset rises, with the corner (p=1, upset=0) the global minimum.
    assert all(best <= cell.latency_rounds for cell in cells)
    assert grid[(0.25, 0.0)].latency_rounds >= grid[(0.5, 0.0)].latency_rounds
    assert grid[(1.0, 0.7)].latency_rounds > grid[(1.0, 0.0)].latency_rounds
    # Even the hard corner still makes progress at these levels.
    assert grid[(0.5, 0.7)].completion_rate > 0.0
    shape_report["fig4_8"] = {
        f"p={p},upset={u}": round(c.latency_rounds, 1)
        for (p, u), c in sorted(grid.items())
    }
