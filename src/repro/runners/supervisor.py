"""``FleetSupervisor`` — the self-healing process-pool execution layer.

The historical pool path of :class:`~repro.runners.SweepRunner` treated
the ``ProcessPoolExecutor`` as infallible: one worker dying (OOM kill,
segfaulting native library, ``kill -9``) raised ``BrokenProcessPool``
and aborted the whole campaign.  This module applies the paper's
fault-tolerance discipline to the harness itself:

* **pool rebuild** — a broken pool is torn down and rebuilt with capped
  exponential backoff; the tasks that were in flight are re-derived from
  the runner's incremental checkpoint discipline (they were simply never
  emitted) and resubmitted.  Task seeds are explicit on every spec, so
  the recovered campaign is bit-identical to an undisturbed one.
* **poison-task quarantine** — a task that repeatedly takes its worker
  down is isolated instead of retry-looping the fleet to death.  Blame
  is assigned to every task in flight when the pool breaks; a task whose
  blame count crosses the suspicion threshold is re-run *alone*, so one
  more crash convicts it with certainty and innocent bystanders are
  exonerated by a single clean solo run.  A convicted task completes as
  a :class:`PoisonedTask` diagnostics value (``TaskCompletion.source ==
  "poisoned"``, a ``status='poisoned'`` row in ``ResultsDB``) and its
  siblings keep running.
* **graceful degradation** — when the pool breaks more than
  ``max_pool_rebuilds`` times, the supervisor stops fighting: it emits a
  loud ``RuntimeWarning`` and finishes the remaining tasks serially
  in-process.  Crash-suspect tasks are quarantined rather than risked in
  the coordinating process (a poison task run in-process would take the
  whole campaign down — the one failure mode serial execution cannot
  absorb).
* **clean interrupt** — ``KeyboardInterrupt`` flushes every
  already-finished future through the checkpoint (cache + DB) before the
  pool is reaped with ``cancel_futures=True``, so a Ctrl-C'd campaign
  resumes from everything that actually completed.

The supervisor preserves the runner's existing retry/timeout semantics
(bounded attempts with exponential backoff, per-task wall-clock budgets
with abandoned-worker resubmission) and its serial fallback for
environments without working process pools.  ``repro.service.chaos``
attacks this layer deliberately and certifies its tolerance envelope;
``docs/operations.md`` is the failure-mode runbook.
"""

from __future__ import annotations

import logging
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.runners.runner import (
    RetryExhaustedError,
    SimTask,
    TaskCompletion,
    _execute_task,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.runners.runner import SweepRunner

__all__ = ["POISONED", "FleetSupervisor", "PoisonedTask"]

logger = logging.getLogger(__name__)

#: ``TaskCompletion.source`` of a quarantined task.
POISONED = "poisoned"

#: Worker-death blames after which a co-blamed task only runs alone.
#: Two is the smallest count that cannot be explained by a single
#: unlucky co-location with a genuine poison task.
_SUSPECT_AFTER = 2

#: Ceiling on the capped-exponential pool-rebuild delay.
_MAX_REBUILD_DELAY_S = 30.0


@dataclass(frozen=True)
class PoisonedTask:
    """Diagnostics standing in for the result of a quarantined task.

    Attributes:
        task: the quarantined :class:`SimTask` (seed filled in), so the
            exact failing spec can be replayed in isolation.
        crashes: worker deaths attributed to the task before conviction.
        reason: one-line human-readable conviction rationale.
    """

    task: SimTask
    crashes: int
    reason: str

    def to_json_dict(self) -> dict:
        """Deterministic JSON form (feeds the ``result_json`` column)."""
        return {
            "poisoned": True,
            "fn": self.task.fn,
            "label": self.task.label,
            "seed": self.task.seed,
            "crashes": self.crashes,
            "reason": self.reason,
        }


class _PoolBroken(Exception):
    """Internal control flow: the pool died under these in-flight tasks."""

    def __init__(self, states: list["_TaskState"]) -> None:
        super().__init__(
            f"process pool broke under {len(states)} in-flight task(s)"
        )
        self.states = states


class _PoolUnhealthy(Exception):
    """Internal control flow: the rebuild budget is exhausted."""

    def __init__(self, breaks: int) -> None:
        super().__init__(f"process pool broke {breaks} time(s)")
        self.breaks = breaks


@dataclass
class _TaskState:
    """One not-yet-completed task's mutable supervision record.

    Attributes:
        index: position in the submitted batch.
        task: the spec.
        key: content-hash cache key (``None`` when caching is off).
        attempt: ordinary-failure attempt counter (exceptions/timeouts),
            bounded by the runner's ``max_attempts``.
        blames: worker deaths this task was in flight for.
        solo: whether the most recent blame was exact (the task was the
            only one in flight when the pool died).
    """

    index: int
    task: SimTask
    key: str | None
    attempt: int = 1
    blames: int = 0
    solo: bool = False


class FleetSupervisor:
    """Drives one pooled sweep batch with crash supervision.

    One instance supervises one :meth:`SweepRunner.run` batch: it owns
    the ``ProcessPoolExecutor``, rebuilds it when workers die, assigns
    crash blame, quarantines poison tasks and degrades to serial
    execution when the pool is beyond saving.  All knobs and counters
    live on the runner (``max_pool_rebuilds``, ``rebuild_backoff_s``,
    ``pool_rebuilds``, ``tasks_poisoned``), so callers keep a single
    configuration surface.
    """

    def __init__(self, runner: "SweepRunner") -> None:
        self.runner = runner
        self._pool: ProcessPoolExecutor | None = None
        self._breaks = 0
        self._workers = runner.n_workers

    # ------------------------------------------------------------------ api

    def execute(
        self,
        pending: list[tuple[int, SimTask, str | None]],
        emit: Callable[[TaskCompletion, str | None], None],
    ) -> None:
        """Run `pending` to completion, surviving worker crashes.

        Every task ends in exactly one of three ways: emitted with its
        result, emitted as a :class:`PoisonedTask`, or the sweep aborts
        (``RetryExhaustedError`` / an unexpected error / interrupt).
        """
        runner = self.runner
        if runner.task_timeout_s is None:
            self._workers = min(runner.n_workers, len(pending))
        else:
            # Abandoned (timed-out) workers stay busy until their task
            # finishes on its own; clamping to the batch size would let
            # one hung task starve its own retries.
            self._workers = runner.n_workers
        ready: deque[_TaskState] = deque(
            _TaskState(index, task, key) for index, task, key in pending
        )
        probes: deque[_TaskState] = deque()
        try:
            while ready or probes:
                solo = not ready
                queue = deque([probes.popleft()]) if solo else ready
                try:
                    pool = self._ensure_pool()
                    self._drive(pool, queue, emit, limit=1 if solo else None)
                except _PoolBroken as broken:
                    self._teardown(cancel=True)
                    self._classify(broken.states, ready, probes, emit)
                    self._rebuild_backoff()
                except (OSError, PermissionError, ImportError):
                    # _drive requeued its in-flight states into `queue`;
                    # merge a probe batch back before degrading.
                    if solo:
                        probes.extendleft(queue)
                    raise
        except (OSError, PermissionError, ImportError) as error:
            self._teardown(cancel=True)
            warnings.warn(
                f"process pool unavailable ({error}); running sweep serially",
                RuntimeWarning,
                stacklevel=5,
            )
            self._degrade(list(ready) + list(probes), emit)
            return
        except _PoolUnhealthy as unhealthy:
            self._teardown(cancel=True)
            warnings.warn(
                f"process pool persistently unhealthy (broke "
                f"{unhealthy.breaks} times, rebuild budget "
                f"{runner.max_pool_rebuilds}); degrading to serial "
                "in-process execution for the remaining tasks",
                RuntimeWarning,
                stacklevel=5,
            )
            self._degrade(list(ready) + list(probes), emit)
            return
        except BaseException:
            # Interrupts and task failures alike: reap the pool without
            # waiting on stragglers (completed futures were already
            # flushed by _drive).
            self._teardown(cancel=True)
            raise
        # Clean finish: wait so abandoned (timed-out) workers are reaped
        # before returning, exactly like the historical context manager.
        self._teardown(wait=True)

    # ----------------------------------------------------------- pool state

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The live pool, building a fresh one after a teardown."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def _teardown(self, *, wait: bool = False, cancel: bool = False) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=cancel)
            self._pool = None

    def _rebuild_backoff(self) -> None:
        """Account one pool break; sleep before the rebuild.

        Raises:
            _PoolUnhealthy: the break count exceeded the runner's
                ``max_pool_rebuilds`` budget.
        """
        runner = self.runner
        self._breaks += 1
        runner.pool_rebuilds += 1
        if self._breaks > runner.max_pool_rebuilds:
            raise _PoolUnhealthy(self._breaks)
        delay = min(
            runner.rebuild_backoff_s * (2 ** (self._breaks - 1)),
            _MAX_REBUILD_DELAY_S,
        )
        logger.warning(
            "worker pool broke (%d/%d tolerated); rebuilding in %.2fs",
            self._breaks,
            runner.max_pool_rebuilds,
            delay,
        )
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------- driving

    def _drive(
        self,
        pool: ProcessPoolExecutor,
        queue: deque[_TaskState],
        emit: Callable[[TaskCompletion, str | None], None],
        *,
        limit: int | None = None,
    ) -> None:
        """Pump `queue` through `pool` until it (and all flights) drain.

        Submission is bounded by the worker count, so the in-flight set
        is a tight superset of what is actually *running* — which is
        what makes crash blame (see :meth:`_classify`) meaningful.
        Raises :class:`_PoolBroken` with the in-flight states on worker
        death; requeues in-flight states and re-raises on pool
        *infrastructure* errors (``OSError`` family) so the caller can
        degrade to serial execution.
        """
        runner = self.runner
        timeout = runner.task_timeout_s
        limit = self._workers if limit is None else limit
        #: future -> (state, deadline, submitted_at)
        inflight: dict[Future, tuple[_TaskState, float | None, float]] = {}

        def submit(state: _TaskState) -> None:
            try:
                future = pool.submit(_execute_task, state.task)
            except BrokenProcessPool:
                survivors = [state] + [s for s, _, _ in inflight.values()]
                inflight.clear()
                raise _PoolBroken(survivors) from None
            now = time.monotonic()
            deadline = now + timeout if timeout is not None else None
            inflight[future] = (state, deadline, now)

        def requeue_for_retry(state: _TaskState, error: BaseException | None):
            if state.attempt >= runner.max_attempts:
                if error is None:
                    raise RetryExhaustedError(state.task, state.attempt, None)
                raise RetryExhaustedError(
                    state.task, state.attempt, error
                ) from error
            runner.tasks_retried += 1
            time.sleep(runner._backoff_delay(state.attempt))
            state.attempt += 1
            queue.append(state)

        try:
            while queue or inflight:
                while queue and len(inflight) < limit:
                    submit(queue.popleft())
                poll = 0.1 if timeout is not None else None
                done, _ = wait(
                    inflight, timeout=poll, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                # Successful results first: a dying worker fails every
                # other in-flight future at once, but results that
                # landed before the crash are good — checkpoint them
                # before assigning blame for the break.
                failures: list[tuple[Future, _TaskState, BaseException]] = []
                for future in done:
                    state, _, submitted = inflight[future]
                    error = future.exception()
                    if error is None:
                        inflight.pop(future)
                        emit(
                            TaskCompletion(
                                state.index,
                                state.task,
                                future.result(),
                                "executed",
                                now - submitted,
                            ),
                            state.key,
                        )
                    else:
                        failures.append((future, state, error))
                for future, state, error in failures:
                    if future not in inflight:
                        continue  # swept up by an earlier _PoolBroken
                    if isinstance(error, BrokenProcessPool):
                        survivors = [s for s, _, _ in inflight.values()]
                        inflight.clear()
                        raise _PoolBroken(survivors) from None
                    inflight.pop(future)
                    if isinstance(
                        error, (OSError, PermissionError, ImportError)
                    ):
                        # Pool infrastructure trouble, not a task
                        # failure: requeue the survivors and surface it
                        # so the supervisor degrades to serial.
                        queue.appendleft(state)
                        queue.extend(s for s, _, _ in inflight.values())
                        inflight.clear()
                        raise error
                    requeue_for_retry(state, error)
                if timeout is None:
                    continue
                for future in list(inflight):
                    state, deadline, _ = inflight[future]
                    if deadline is None or now < deadline:
                        continue
                    if future.running() or not future.cancel():
                        # Can't preempt a running worker: abandon the
                        # future (its eventual result is discarded) and
                        # retry the task on a fresh submission.
                        inflight.pop(future)
                        future.add_done_callback(lambda f: f.exception())
                    else:
                        inflight.pop(future)
                    requeue_for_retry(state, None)
        except KeyboardInterrupt:
            # Clean drain: flush everything that already finished into
            # the checkpoint before the supervisor reaps the pool.
            self._flush_finished(inflight, emit)
            raise

    def _flush_finished(
        self,
        inflight: dict[Future, tuple[_TaskState, float | None, float]],
        emit: Callable[[TaskCompletion, str | None], None],
    ) -> None:
        """Emit every already-completed in-flight future (non-blocking)."""
        done, _ = wait(inflight, timeout=0)
        now = time.monotonic()
        for future in done:
            state, _, submitted = inflight.pop(future)
            if future.exception() is None:
                emit(
                    TaskCompletion(
                        state.index,
                        state.task,
                        future.result(),
                        "executed",
                        now - submitted,
                    ),
                    state.key,
                )

    # ------------------------------------------------------ blame & poison

    def _classify(
        self,
        states: list[_TaskState],
        ready: deque[_TaskState],
        probes: deque[_TaskState],
        emit: Callable[[TaskCompletion, str | None], None],
    ) -> None:
        """Assign blame for one pool break and route survivors.

        Every task in flight at the moment of death is blamed once; the
        blame is *exact* when the task was alone.  Routing rules:

        * blamed ``max_attempts`` times with an exact final blame —
          convicted, quarantined as poisoned;
        * blamed while co-located (``_SUSPECT_AFTER`` times, or past the
          attempt budget) — suspect: re-run alone via the probe queue,
          where one clean run exonerates and one more crash convicts;
        * otherwise — back into the general queue for an ordinary retry.
        """
        exact = len(states) == 1
        for state in states:
            state.blames += 1
            state.solo = exact
        for state in states:
            if state.blames >= self.runner.max_attempts and state.solo:
                self._quarantine(
                    state,
                    emit,
                    reason=(
                        f"worker crashed {state.blames} time(s), "
                        "the last with this task running alone"
                    ),
                )
            elif (
                exact
                or state.blames >= _SUSPECT_AFTER
                or state.blames >= self.runner.max_attempts
            ):
                probes.append(state)
            else:
                ready.append(state)

    def _quarantine(
        self,
        state: _TaskState,
        emit: Callable[[TaskCompletion, str | None], None],
        *,
        reason: str,
    ) -> None:
        """Complete `state` as poisoned: diagnostics instead of a result.

        The :class:`PoisonedTask` flows through the ordinary completion
        path (results list, ``on_result``, a ``status='poisoned'`` DB
        row) but is never written to the pickle cache — a rerun must
        retry the task, not replay its quarantine.
        """
        self.runner.tasks_poisoned += 1
        diagnostics = PoisonedTask(
            task=state.task, crashes=state.blames, reason=reason
        )
        logger.warning(
            "quarantined poison task %s (seed=%s) after %d worker "
            "crash(es): %s",
            state.task.label or state.task.fn,
            state.task.seed,
            state.blames,
            reason,
        )
        emit(
            TaskCompletion(state.index, state.task, diagnostics, POISONED),
            state.key,
        )

    # ---------------------------------------------------------- degradation

    def _degrade(
        self,
        states: list[_TaskState],
        emit: Callable[[TaskCompletion, str | None], None],
    ) -> None:
        """Finish `states` serially in-process (the pool is gone).

        Tasks that were ever blamed for a worker death are quarantined
        instead of executed: serial execution has no process isolation,
        so running a crash suspect here could take the coordinator (and
        the whole campaign record) down with it.
        """
        clean: list[Any] = []
        for state in sorted(states, key=lambda s: s.index):
            if state.blames:
                self._quarantine(
                    state,
                    emit,
                    reason=(
                        f"pool degraded to serial after {state.blames} "
                        "crash blame(s); a crash suspect is not risked "
                        "in the coordinating process"
                    ),
                )
            else:
                clean.append((state.index, state.task, state.key))
        self.runner._execute_serial(clean, emit)
