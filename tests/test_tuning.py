"""Tests for the p-sweep trade-off helper (§4 intro's four protocols)."""

import pytest

from repro.apps.master_slave import MasterSlavePiApp
from repro.core.protocol import StochasticProtocol
from repro.core.tuning import TradeoffPoint, sweep_forwarding_probability
from repro.noc.engine import NocSimulator
from repro.noc.topology import Mesh2D


def _run_master_slave(p: float, seed: int):
    app = MasterSlavePiApp.default_5x5(n_terms=100)
    simulator = NocSimulator(
        Mesh2D(5, 5), StochasticProtocol(p), seed=seed, default_ttl=30
    )
    app.deploy(simulator)
    return simulator.run(300, until=lambda sim: app.master.complete)


class TestSweep:
    def test_point_per_probability(self):
        points = sweep_forwarding_probability(
            _run_master_slave, probabilities=[0.5, 1.0], repetitions=2
        )
        assert [pt.forward_probability for pt in points] == [0.5, 1.0]
        assert all(pt.completion_rate == 1.0 for pt in points)

    def test_flooding_fastest(self):
        points = sweep_forwarding_probability(
            _run_master_slave, probabilities=[0.25, 1.0], repetitions=3
        )
        sparse, flood = points
        assert flood.latency_rounds <= sparse.latency_rounds

    def test_transmissions_scale_with_p(self):
        points = sweep_forwarding_probability(
            _run_master_slave, probabilities=[0.25, 0.75], repetitions=2
        )
        # More forwarding per round; run-to-completion lengths differ, so
        # only the per-round rate is strictly ordered — check the energy-
        # delay product instead, which flooding-ish p should not lose by
        # an order of magnitude.
        assert points[0].energy_j > 0
        assert points[1].energy_j > 0

    def test_repetition_validation(self):
        with pytest.raises(ValueError):
            sweep_forwarding_probability(_run_master_slave, repetitions=0)

    def test_failed_runs_reported_via_completion_rate(self):
        def never_finishes(p, seed):
            app = MasterSlavePiApp.default_5x5(n_terms=100)
            simulator = NocSimulator(
                Mesh2D(5, 5), StochasticProtocol(p), seed=seed
            )
            app.deploy(simulator)
            # Impossible predicate: the run always exhausts its budget.
            return simulator.run(5, until=lambda sim: False)

        points = sweep_forwarding_probability(
            never_finishes, probabilities=[0.5], repetitions=2
        )
        assert points[0].completion_rate == 0.0
        assert points[0].latency_rounds == 5.0

    def test_tradeoff_point_edp(self):
        point = TradeoffPoint(
            forward_probability=0.5,
            latency_rounds=10,
            latency_s=2.0,
            energy_j=3.0,
            transmissions=100,
            completion_rate=1.0,
        )
        assert point.energy_delay_product == pytest.approx(6.0)
