"""Energy-aware IP-to-tile mapping.

Thesis §4.1.3 observes that measured latencies "are dependent on the
mapping of IPs to tiles" and that "the mapping phase of the system-level
design has to take into account the communication performance", citing
Hu & Mărculescu's energy-aware mapping (DATE 2003).  This module
implements that phase for our simulator:

* a :class:`CommunicationGraph` of per-IP-pair traffic weights;
* the standard cost model — weighted Manhattan hop-distance, which is
  proportional to minimum-path communication energy on a mesh;
* three mappers: random baseline, greedy constructive placement, and a
  simulated-annealing refiner (pairwise swaps, geometric cooling).

The mapping experiment (`benchmarks/bench_mapping.py`) closes the loop:
an optimised placement measurably reduces both simulated latency and
Eq. 3 energy versus a poor one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.noc.topology import Mesh2D


@dataclass
class CommunicationGraph:
    """Traffic demands between logical IPs.

    Attributes:
        ips: logical IP names (hashable ids).
        demands: (src_ip, dst_ip) -> weight (messages, bits — any
            consistent unit); direction matters only for bookkeeping,
            cost is symmetric on a mesh.
    """

    ips: list
    demands: dict[tuple, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate IP uniqueness and that every demand names known IPs."""
        if len(set(self.ips)) != len(self.ips):
            raise ValueError("IP names must be unique")
        known = set(self.ips)
        for (src, dst), weight in self.demands.items():
            if src not in known or dst not in known:
                raise ValueError(f"demand {src}->{dst} names unknown IPs")
            if src == dst:
                raise ValueError(f"self-demand on {src}")
            if weight < 0:
                raise ValueError(f"negative demand {src}->{dst}")

    def add(self, src, dst, weight: float) -> None:
        """Accumulate traffic between two IPs."""
        if src not in self.ips or dst not in self.ips:
            raise ValueError(f"demand {src}->{dst} names unknown IPs")
        if src == dst:
            raise ValueError(f"self-demand on {src}")
        if weight < 0:
            raise ValueError(f"negative demand {src}->{dst}")
        self.demands[(src, dst)] = self.demands.get((src, dst), 0.0) + weight

    @property
    def total_demand(self) -> float:
        """Summed traffic weight over every demand pair."""
        return sum(self.demands.values())


def mapping_cost(
    mesh: Mesh2D, mapping: dict, graph: CommunicationGraph
) -> float:
    """Weighted Manhattan-distance cost of a placement.

    On a mesh, minimum-path energy per message is proportional to the hop
    distance, so this is the Eq. 3 communication energy up to a constant
    (gossip's redundancy multiplies it but preserves the ordering).
    """
    missing = [ip for ip in graph.ips if ip not in mapping]
    if missing:
        raise ValueError(f"mapping misses IPs: {missing}")
    tiles = list(mapping.values())
    if len(set(tiles)) != len(tiles):
        raise ValueError("two IPs share a tile")
    return sum(
        weight * mesh.manhattan_distance(mapping[src], mapping[dst])
        for (src, dst), weight in graph.demands.items()
    )


def random_mapping(
    graph: CommunicationGraph,
    mesh: Mesh2D,
    rng: np.random.Generator | int | None = None,
) -> dict:
    """Uniformly random placement (the baseline mappers must beat)."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if len(graph.ips) > mesh.n_tiles:
        raise ValueError(
            f"{len(graph.ips)} IPs do not fit {mesh.n_tiles} tiles"
        )
    tiles = rng.choice(mesh.n_tiles, size=len(graph.ips), replace=False)
    return {ip: int(tile) for ip, tile in zip(graph.ips, tiles)}


def greedy_mapping(graph: CommunicationGraph, mesh: Mesh2D) -> dict:
    """Constructive placement: heaviest communicators go adjacent.

    Seeds the centre tile with the IP carrying the most traffic, then
    repeatedly places the unplaced IP with the strongest ties to the
    placed set onto the free tile minimising its incremental cost.
    """
    if len(graph.ips) > mesh.n_tiles:
        raise ValueError(
            f"{len(graph.ips)} IPs do not fit {mesh.n_tiles} tiles"
        )
    volume: dict = {ip: 0.0 for ip in graph.ips}
    for (src, dst), weight in graph.demands.items():
        volume[src] += weight
        volume[dst] += weight
    order = sorted(graph.ips, key=lambda ip: -volume[ip])
    center = mesh.tile_at(mesh.rows // 2, mesh.cols // 2)
    mapping: dict = {order[0]: center}
    free = set(mesh.tile_ids) - {center}
    placed = {order[0]}
    remaining = [ip for ip in order[1:]]
    while remaining:
        # Strongest unplaced IP relative to the placed set.
        def tie_strength(ip) -> float:
            """Traffic between `ip` and the already-placed set."""
            return sum(
                weight
                for (src, dst), weight in graph.demands.items()
                if (src == ip and dst in placed)
                or (dst == ip and src in placed)
            )

        candidate = max(remaining, key=tie_strength)
        remaining.remove(candidate)

        def incremental_cost(tile: int) -> float:
            """Cost `candidate` adds when placed on `tile`."""
            return sum(
                weight * mesh.manhattan_distance(tile, mapping[other])
                for (src, dst), weight in graph.demands.items()
                for ip, other in ((src, dst), (dst, src))
                if ip == candidate and other in placed
            )

        best_tile = min(sorted(free), key=incremental_cost)
        mapping[candidate] = best_tile
        free.remove(best_tile)
        placed.add(candidate)
    return mapping


def anneal_mapping(
    graph: CommunicationGraph,
    mesh: Mesh2D,
    iterations: int = 2000,
    initial_temperature: float | None = None,
    cooling: float = 0.995,
    seed: int | None = None,
    start: dict | None = None,
) -> dict:
    """Simulated-annealing refinement by pairwise swap moves.

    Args:
        graph / mesh: the problem.
        iterations: swap proposals.
        initial_temperature: starting T; ``None`` scales it to the mean
            per-demand cost so acceptance starts permissive.
        cooling: geometric factor per iteration (0 < cooling < 1).
        seed: RNG seed.
        start: starting placement; defaults to :func:`greedy_mapping`.
    """
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0, 1), got {cooling}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    rng = np.random.default_rng(seed)
    mapping = dict(start) if start is not None else greedy_mapping(graph, mesh)
    cost = mapping_cost(mesh, mapping, graph)
    if initial_temperature is None:
        initial_temperature = max(
            1.0, cost / max(len(graph.demands), 1)
        )
    temperature = initial_temperature
    ips = list(graph.ips)
    free_tiles = sorted(set(mesh.tile_ids) - set(mapping.values()))
    best_mapping, best_cost = dict(mapping), cost
    for _ in range(iterations):
        if free_tiles and rng.random() < 0.3:
            # Move one IP onto a free tile.
            ip = ips[int(rng.integers(len(ips)))]
            tile_index = int(rng.integers(len(free_tiles)))
            new_tile = free_tiles[tile_index]
            old_tile = mapping[ip]
            mapping[ip] = new_tile
            new_cost = mapping_cost(mesh, mapping, graph)
            if new_cost <= cost or rng.random() < np.exp(
                (cost - new_cost) / temperature
            ):
                cost = new_cost
                free_tiles[tile_index] = old_tile
            else:
                mapping[ip] = old_tile
        else:
            # Swap two IPs.
            a, b = rng.choice(len(ips), size=2, replace=False)
            ip_a, ip_b = ips[int(a)], ips[int(b)]
            mapping[ip_a], mapping[ip_b] = mapping[ip_b], mapping[ip_a]
            new_cost = mapping_cost(mesh, mapping, graph)
            if new_cost <= cost or rng.random() < np.exp(
                (cost - new_cost) / temperature
            ):
                cost = new_cost
            else:
                mapping[ip_a], mapping[ip_b] = mapping[ip_b], mapping[ip_a]
        if cost < best_cost:
            best_mapping, best_cost = dict(mapping), cost
        temperature *= cooling
    return best_mapping


def master_slave_graph(n_slaves: int = 8, reply_weight: float = 1.0) -> CommunicationGraph:
    """The Master-Slave app's traffic: one task + one reply per slave."""
    if n_slaves < 1:
        raise ValueError(f"need >= 1 slave, got {n_slaves}")
    ips = ["master"] + [f"slave{k}" for k in range(n_slaves)]
    graph = CommunicationGraph(ips)
    for k in range(n_slaves):
        graph.add("master", f"slave{k}", 1.0)
        graph.add(f"slave{k}", "master", reply_weight)
    return graph
