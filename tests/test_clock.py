"""Tests for per-tile clock domains."""

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.noc.clock import ClockDomain


def _clock(sigma=0.0, seed=0, period=1.0):
    injector = FaultInjector(FaultConfig(sigma_synchr=sigma), seed)
    return ClockDomain(period, injector)


class TestNoSkew:
    def test_exact_boundaries(self):
        clock = _clock()
        assert clock.round_start(0) == 0.0
        assert clock.round_end(0) == 1.0
        assert clock.round_start(5) == 5.0
        assert clock.round_end(5) == 6.0

    def test_first_round_at_or_after(self):
        clock = _clock()
        assert clock.first_round_starting_at_or_after(0.0) == 0
        assert clock.first_round_starting_at_or_after(0.5) == 1
        assert clock.first_round_starting_at_or_after(3.0) == 3
        assert clock.first_round_starting_at_or_after(3.0001) == 4

    def test_elapsed(self):
        assert _clock().elapsed_through(9) == 10.0


class TestWithSkew:
    def test_boundaries_monotone(self):
        clock = _clock(sigma=0.3, seed=1)
        boundaries = [clock.round_start(k) for k in range(200)]
        assert all(b < a for b, a in zip(boundaries, boundaries[1:]))

    def test_durations_near_nominal(self):
        clock = _clock(sigma=0.1, seed=2)
        durations = [
            clock.round_end(k) - clock.round_start(k) for k in range(500)
        ]
        assert np.mean(durations) == pytest.approx(1.0, abs=0.03)
        assert np.std(durations) == pytest.approx(0.1, abs=0.02)

    def test_memoised(self):
        clock = _clock(sigma=0.5, seed=3)
        first = clock.round_end(10)
        assert clock.round_end(10) == first  # no re-draw

    def test_skew_slips_arrival_rounds(self):
        # With heavy skew, a time that lands mid-round maps past it.
        clock = _clock(sigma=0.4, seed=4)
        index = clock.first_round_starting_at_or_after(7.3)
        assert clock.round_start(index) >= 7.3
        if index > 0:
            assert clock.round_start(index - 1) < 7.3


class TestValidation:
    def test_rejects_bad_period(self):
        injector = FaultInjector(FaultConfig(), 0)
        with pytest.raises(ValueError):
            ClockDomain(0.0, injector)

    def test_rejects_negative_round(self):
        clock = _clock()
        with pytest.raises(ValueError):
            clock.round_start(-1)
        with pytest.raises(ValueError):
            clock.round_end(-1)
