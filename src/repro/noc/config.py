"""Immutable simulator configuration.

:class:`SimConfig` captures everything that *defines* a simulation apart
from its random seed and runtime hooks: the topology, the forwarding
protocol, the fault model, the electrical constants and every tuning knob
of :class:`repro.noc.engine.NocSimulator`.  It is

* **frozen** — a config can be shared between runs and threads without
  defensive copying;
* **picklable** — process-parallel sweep workers receive the config as
  their task spec (see :mod:`repro.runners`);
* **content-hashable** — :meth:`SimConfig.cache_token` digests every
  field into a stable hex string, the backbone of the on-disk result
  cache; changing any field changes the token.

``NocSimulator(...)`` keyword arguments and ``SimConfig`` fields are the
same names with the same defaults; the constructor is a thin wrapper that
builds a config and hands it to
:meth:`repro.noc.engine.NocSimulator.from_config`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.core.protocol import StochasticProtocol
from repro.crc import CRC, CRC16_CCITT
from repro.faults import CrashPlan, FaultConfig, ScenarioSpec, describe_scenario
from repro.noc.backends.base import KNOWN_BACKENDS, OBJECT_BACKEND
from repro.noc.link import DEFAULT_LINK, LinkModel
from repro.noc.topology import Topology
from repro.policies.base import (
    ForwardingPolicy,
    LegacyProtocolPolicy,
    PolicySpec,
)

# --------------------------------------------------------------- describers
#
# Canonical, deterministic tuple forms of the non-primitive field types.
# They feed the cache token, so they must be stable across processes and
# interpreter runs (no `id()`, no unsorted set iteration, no raw `hash()`).


def describe_topology(topology: Topology) -> tuple:
    """A topology is its class, size and exact (sorted) link set."""
    return (
        type(topology).__name__,
        topology.n_tiles,
        tuple(topology.links),
    )


def describe_protocol(protocol: StochasticProtocol | PolicySpec) -> tuple:
    if isinstance(protocol, PolicySpec):
        # Policy-native configs: the spec's canonical tuple.  Distinct
        # policies (or the same policy with different parameters) can
        # therefore never alias in the cache.
        return protocol.describe()
    return (
        type(protocol).__name__,
        protocol.forward_probability,
        protocol.name,
    )


def describe_crc(crc: CRC) -> tuple:
    spec = crc.spec
    return (
        spec.name,
        spec.width,
        spec.polynomial,
        spec.init,
        spec.reflect_in,
        spec.reflect_out,
        spec.xor_out,
    )


def describe_fault_config(config: FaultConfig) -> tuple:
    return (
        config.p_tile,
        config.p_link,
        config.p_upset,
        config.p_overflow,
        config.sigma_synchr,
        config.error_model,
    )


def describe_link_model(link: LinkModel) -> tuple:
    return (link.frequency_hz, link.energy_per_bit_j, link.width_bits)


def describe_crash_plan(plan: CrashPlan | None) -> tuple | None:
    if plan is None:
        return None
    return (tuple(sorted(plan.dead_tiles)), tuple(sorted(plan.dead_links)))


@dataclass(frozen=True, eq=False)
class SimConfig:
    """The complete, seed-free specification of one NoC simulation.

    Every field mirrors the :class:`repro.noc.engine.NocSimulator`
    constructor argument of the same name (see its docstring for
    semantics).  ``fault_config=None`` normalises to
    :meth:`FaultConfig.fault_free`; the mapping-valued knobs normalise to
    empty dicts and the set-valued ones to frozensets, so two configs
    built from equivalent arguments compare (and hash) equal.
    """

    topology: Topology
    protocol: StochasticProtocol | ForwardingPolicy | PolicySpec
    fault_config: FaultConfig | None = None
    link_model: LinkModel = DEFAULT_LINK
    default_ttl: int | None = None
    buffer_capacity: int | None = None
    buffer_mode: str = "retain"
    crc: CRC = CRC16_CCITT
    nominal_round_s: float | None = None
    payload_bits: int = 512
    crash_plan: CrashPlan | None = None
    protected_tiles: frozenset[int] = frozenset()
    link_delays: dict[tuple[int, int], int] = field(default_factory=dict)
    link_energy_overrides: dict[tuple[int, int], float] = field(
        default_factory=dict
    )
    egress_limits: dict[int, int] = field(default_factory=dict)
    bus_tiles: frozenset[int] = frozenset()
    scenario: ScenarioSpec | None = None
    #: Which engine executes this config: "object" (the reference
    #: per-object engine) or "fast" (the vectorised structure-of-arrays
    #: engine).  Both produce bit-identical results for any supported
    #: config — see docs/performance.md for the fast backend's limits.
    backend: str = OBJECT_BACKEND

    def __post_init__(self) -> None:
        # Normalise the permissive constructor types to canonical ones so
        # equality/hashing do not depend on how the caller spelled them.
        # Stateful policy objects normalise to their frozen PolicySpec: the
        # config stays picklable and run-independent, and the engine builds
        # a fresh policy instance per run (no state leaks between runs).
        if isinstance(self.protocol, LegacyProtocolPolicy):
            object.__setattr__(self, "protocol", self.protocol.protocol)
        elif isinstance(self.protocol, ForwardingPolicy):
            object.__setattr__(self, "protocol", self.protocol.spec)
        if self.fault_config is None:
            object.__setattr__(self, "fault_config", FaultConfig.fault_free())
        object.__setattr__(
            self, "protected_tiles", frozenset(self.protected_tiles)
        )
        object.__setattr__(self, "bus_tiles", frozenset(self.bus_tiles))
        object.__setattr__(self, "link_delays", dict(self.link_delays or {}))
        object.__setattr__(
            self,
            "link_energy_overrides",
            dict(self.link_energy_overrides or {}),
        )
        object.__setattr__(
            self, "egress_limits", dict(self.egress_limits or {})
        )

        if self.buffer_mode not in ("retain", "relay"):
            raise ValueError(
                f"buffer_mode must be 'retain' or 'relay', got "
                f"{self.buffer_mode!r}"
            )
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1 or None, got "
                f"{self.buffer_capacity}"
            )
        if self.default_ttl is not None and self.default_ttl < 1:
            raise ValueError(
                f"default_ttl must be >= 1 or None, got {self.default_ttl}"
            )
        if self.nominal_round_s is not None and self.nominal_round_s <= 0:
            raise ValueError(
                f"nominal_round_s must be > 0, got {self.nominal_round_s}"
            )
        if self.payload_bits < 1:
            raise ValueError(
                f"payload_bits must be positive, got {self.payload_bits}"
            )
        if any(delay < 1 for delay in self.link_delays.values()):
            raise ValueError("link delays must be >= 1 round")
        if any(limit < 1 for limit in self.egress_limits.values()):
            raise ValueError("egress limits must be >= 1")
        if self.scenario is not None and not isinstance(
            self.scenario, ScenarioSpec
        ):
            raise TypeError(
                f"scenario must be a repro.faults.ScenarioSpec or None, "
                f"got {type(self.scenario).__name__}"
            )
        if self.backend not in KNOWN_BACKENDS:
            known = ", ".join(repr(name) for name in KNOWN_BACKENDS)
            raise ValueError(
                f"backend must be one of {known}, got {self.backend!r}"
            )

    # ----------------------------------------------------------- convenience

    def with_(self, **overrides: object) -> "SimConfig":
        """Return a copy with the given fields replaced.

        >>> from repro.noc.topology import Mesh2D
        >>> cfg = SimConfig(Mesh2D(2, 2), StochasticProtocol(0.5))
        >>> cfg.with_(payload_bits=128).payload_bits
        128
        """
        return replace(self, **overrides)

    # --------------------------------------------------------------- hashing

    def describe(self) -> tuple:
        """A canonical, deterministic tuple form of every field.

        Scenario-free configs emit exactly the pre-scenario tuple, and
        object-backend configs omit the backend entry, so legacy cache
        tokens are pinned: existing on-disk caches remain valid, a
        scenario run can never alias a scenario-free one, and — because
        both backends are bit-identical — a fast-backend run *should not*
        produce a different result than the cached object-backend one,
        but its token still differs so backend provenance is auditable.
        """
        base = (
            describe_topology(self.topology),
            describe_protocol(self.protocol),
            describe_fault_config(self.fault_config),
            describe_link_model(self.link_model),
            self.default_ttl,
            self.buffer_capacity,
            self.buffer_mode,
            describe_crc(self.crc),
            self.nominal_round_s,
            self.payload_bits,
            describe_crash_plan(self.crash_plan),
            tuple(sorted(self.protected_tiles)),
            tuple(sorted(self.link_delays.items())),
            tuple(sorted(self.link_energy_overrides.items())),
            tuple(sorted(self.egress_limits.items())),
            tuple(sorted(self.bus_tiles)),
        )
        if self.scenario is not None:
            base = base + (("scenario", describe_scenario(self.scenario)),)
        if self.backend != OBJECT_BACKEND:
            base = base + (("backend", self.backend),)
        return base

    def cache_token(self) -> str:
        """A stable content hash of the whole configuration.

        Two configs share a token iff :meth:`describe` agrees on every
        field, so any field change invalidates cached results keyed on
        the token.  The digest is stable across processes and Python
        invocations (it never uses ``hash()``).
        """
        payload = repr(self.describe()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def __eq__(self, other: object) -> bool:
        # Content equality: two configs describing the same simulation are
        # equal even when their topology/protocol objects are distinct
        # instances (e.g. either side of a pickle round-trip).
        if not isinstance(other, SimConfig):
            return NotImplemented
        return self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.cache_token())
