"""Dynamic, time-varying fault scenarios (the chaos layer of ``repro.faults``).

The five-parameter :class:`repro.faults.FaultConfig` describes *static*
failure statistics: every round draws from the same distributions.  The
thesis' headline claim, however, is that stochastic communication keeps
working while failures arrive and evolve *over time* — upset bursts,
links that die and come back, a correlated region of tiles browning out
mid-run.  This module expresses exactly that regime:

* a :class:`ScenarioSpec` is a **frozen, picklable** description of a
  time-varying fault process.  Specs ride through
  :class:`repro.runners.SweepRunner` task specs unchanged and
  participate in :meth:`repro.noc.config.SimConfig.cache_token`, so two
  sweeps differing only in scenario never alias in the on-disk cache;
* a :class:`ScenarioState` is the per-run mutable realisation of a spec.
  The engine instantiates it with a dedicated RNG stream spawned from
  the run's seed (``SeedSequence(seed).spawn``), so scenario draws are
  deterministic per seed and never perturb the protocol's own stream;
* each round the state emits a :class:`ScenarioEffect`: overrides to the
  effective :class:`FaultConfig`, the set of links currently down, tiles
  to crash, and the labels of the scenario phases active that round
  (recorded by :class:`repro.metrics.MetricsCollector` so drop
  breakdowns attribute losses to the scenario that caused them).

Five concrete scenarios cover the failure regimes of the related
fault-tolerant rumor-spreading literature:

* :class:`BurstUpsets` — elevated ``p_upset`` over a round window (a
  crosstalk/radiation burst);
* :class:`RampOverflow` — ``p_overflow`` ramping linearly up to a peak
  (a congestion build-up);
* :class:`LinkFlap` — links fail and *repair* with geometric MTBF/MTTR
  holding times (intermittent connectors, voltage droop);
* :class:`RegionOutage` — a correlated rectangle of tiles crashes at a
  given round (a particle-strike cluster or voltage-island brownout);
* :class:`Composite` — any stack of the above, applied in order.

See ``docs/faults.md`` for the full model and worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a faults<->noc cycle)
    from repro.noc.topology import Topology


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class ScenarioEffect:
    """What one scenario does to one round.

    Attributes:
        fault_overrides: ``FaultConfig`` field overrides in force this
            round, applied on top of the run's base config (later
            scenarios in a :class:`Composite` win on conflicts).
        down_links: directed links held down this round.  Transient —
            a link absent from the next round's effect has *repaired*.
        crash_tiles: tiles to crash at the start of this round.  Crashes
            are permanent (thesis Ch. 2), so a tile listed here stays
            dead even after the scenario window closes.
        active: labels of the scenario phases active this round, for
            metrics attribution (empty = scenario currently dormant).
    """

    fault_overrides: dict[str, float] = field(default_factory=dict)
    down_links: frozenset[tuple[int, int]] = frozenset()
    crash_tiles: frozenset[int] = frozenset()
    active: tuple[str, ...] = ()

    @classmethod
    def idle(cls) -> "ScenarioEffect":
        """The no-op effect of a dormant scenario."""
        return cls()


class ScenarioState:
    """Per-run mutable realisation of a :class:`ScenarioSpec`.

    Subclasses implement :meth:`begin_round`.  Determinism contract: for
    a fixed spec, topology and RNG seed, the sequence of effects emitted
    for rounds ``0, 1, 2, ...`` is identical on every run — states must
    draw a schedule-independent number of variates per round.
    """

    def begin_round(self, round_index: int) -> ScenarioEffect:
        """Return the effect in force for `round_index`."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScenarioSpec:
    """Base class for frozen, picklable dynamic-fault descriptions.

    A spec is pure configuration: :meth:`instantiate` builds the mutable
    per-run :class:`ScenarioState`, and :meth:`describe` emits the
    canonical tuple that feeds ``SimConfig.cache_token`` and the sweep
    cache key (:mod:`repro.runners.hashing` also understands specs
    generically because they are frozen dataclasses).
    """

    @property
    def label(self) -> str:
        """Short stable name used in metrics attribution and reports."""
        return _KIND_BY_CLASS[type(self)]

    def describe(self) -> tuple:
        """Canonical, deterministic tuple form (class + sorted fields)."""
        import dataclasses

        return (
            type(self).__name__,
            tuple(
                (f.name, _describe_value(getattr(self, f.name)))
                for f in dataclasses.fields(self)
            ),
        )

    def instantiate(
        self, rng: np.random.Generator, topology: "Topology"
    ) -> ScenarioState:
        """Build the per-run state, validated against `topology`."""
        raise NotImplementedError


def _describe_value(value: object) -> object:
    if isinstance(value, ScenarioSpec):
        return value.describe()
    if isinstance(value, tuple):
        return tuple(_describe_value(item) for item in value)
    return value


# ------------------------------------------------------------- burst upsets


class _WindowOverrideState(ScenarioState):
    """Shared state for window-scoped ``FaultConfig`` overrides."""

    def __init__(
        self, label: str, start: int, duration: int | None
    ) -> None:
        self._label = label
        self._start = start
        self._duration = duration

    def _in_window(self, round_index: int) -> bool:
        if round_index < self._start:
            return False
        if self._duration is None:
            return True
        return round_index < self._start + self._duration

    def _overrides(self, round_index: int) -> dict[str, float]:
        raise NotImplementedError

    def begin_round(self, round_index: int) -> ScenarioEffect:
        if not self._in_window(round_index):
            return ScenarioEffect.idle()
        return ScenarioEffect(
            fault_overrides=self._overrides(round_index),
            active=(self._label,),
        )


@dataclass(frozen=True)
class BurstUpsets(ScenarioSpec):
    """Elevated ``p_upset`` over a round window.

    Attributes:
        p_upset: the upset probability in force during the burst.
        start: first round of the burst.
        duration: burst length in rounds; ``None`` holds until the run
            ends.
    """

    p_upset: float
    start: int = 0
    duration: int | None = None

    def __post_init__(self) -> None:
        _check_probability("p_upset", self.p_upset)
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration < 1:
            raise ValueError(
                f"duration must be >= 1 or None, got {self.duration}"
            )

    def instantiate(self, rng, topology) -> ScenarioState:
        spec = self

        class _State(_WindowOverrideState):
            def _overrides(self, round_index: int) -> dict[str, float]:
                return {"p_upset": spec.p_upset}

        return _State(self.label, self.start, self.duration)


# ------------------------------------------------------------ ramp overflow


@dataclass(frozen=True)
class RampOverflow(ScenarioSpec):
    """``p_overflow`` ramping linearly from 0 up to a peak, then holding.

    Models congestion building up over time: the effective overflow
    probability rises linearly across ``ramp_rounds`` rounds starting at
    ``start`` and then stays at ``p_overflow_peak`` for the rest of the
    run (the regime the thesis' ~80 % overflow-tolerance figure is
    recomputed under).
    """

    p_overflow_peak: float
    start: int = 0
    ramp_rounds: int = 8

    def __post_init__(self) -> None:
        _check_probability("p_overflow_peak", self.p_overflow_peak)
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.ramp_rounds < 1:
            raise ValueError(
                f"ramp_rounds must be >= 1, got {self.ramp_rounds}"
            )

    def instantiate(self, rng, topology) -> ScenarioState:
        spec = self

        class _State(_WindowOverrideState):
            def _overrides(self, round_index: int) -> dict[str, float]:
                progress = (round_index - spec.start + 1) / spec.ramp_rounds
                level = spec.p_overflow_peak * min(1.0, progress)
                return {"p_overflow": level}

        return _State(self.label, self.start, None)


# ---------------------------------------------------------------- link flap


class _LinkFlapState(ScenarioState):
    def __init__(
        self,
        label: str,
        links: tuple[tuple[int, int], ...],
        p_fail: float,
        p_repair: float,
        rng: np.random.Generator,
    ) -> None:
        self._label = label
        self._links = links
        self._p_fail = p_fail
        self._p_repair = p_repair
        self._rng = rng
        self._down: set[tuple[int, int]] = set()

    def begin_round(self, round_index: int) -> ScenarioEffect:
        # One draw per affected link per round, in deterministic link
        # order, regardless of current state: the variate count never
        # depends on the trajectory, so runs replay exactly per seed.
        draws = self._rng.random(len(self._links))
        for link, draw in zip(self._links, draws):
            if link in self._down:
                if draw < self._p_repair:
                    self._down.discard(link)
            elif draw < self._p_fail:
                self._down.add(link)
        if not self._down:
            return ScenarioEffect(active=(self._label,))
        return ScenarioEffect(
            down_links=frozenset(self._down), active=(self._label,)
        )


@dataclass(frozen=True)
class LinkFlap(ScenarioSpec):
    """Links fail and repair with geometric MTBF/MTTR holding times.

    Every affected link is an independent two-state Markov chain: an up
    link goes down with probability ``1 / mtbf_rounds`` per round, a
    down link repairs with probability ``1 / mttr_rounds`` per round, so
    the mean up/down holding times are MTBF and MTTR rounds.  Unlike
    crash failures, flapped links carry traffic again after repair.

    Attributes:
        mtbf_rounds: mean rounds between failures of an up link (>= 1).
        mttr_rounds: mean rounds to repair a down link (>= 1).
        fraction: fraction of directed links affected by flapping,
            chosen uniformly at instantiation from the scenario's RNG
            stream (1.0 = every link flaps).
    """

    mtbf_rounds: float = 20.0
    mttr_rounds: float = 4.0
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf_rounds < 1.0:
            raise ValueError(
                f"mtbf_rounds must be >= 1, got {self.mtbf_rounds}"
            )
        if self.mttr_rounds < 1.0:
            raise ValueError(
                f"mttr_rounds must be >= 1, got {self.mttr_rounds}"
            )
        _check_probability("fraction", self.fraction)

    def instantiate(self, rng, topology) -> ScenarioState:
        links = tuple(topology.links)
        if self.fraction < 1.0:
            n_affected = int(round(self.fraction * len(links)))
            if n_affected:
                chosen = rng.choice(len(links), size=n_affected, replace=False)
                links = tuple(links[int(i)] for i in sorted(chosen))
            else:
                links = ()
        return _LinkFlapState(
            self.label,
            links,
            p_fail=1.0 / self.mtbf_rounds,
            p_repair=1.0 / self.mttr_rounds,
            rng=rng,
        )


# ------------------------------------------------------------ region outage


class _RegionOutageState(ScenarioState):
    def __init__(
        self, label: str, round_index: int, tiles: frozenset[int]
    ) -> None:
        self._label = label
        self._round = round_index
        self._tiles = tiles

    def begin_round(self, round_index: int) -> ScenarioEffect:
        if round_index != self._round:
            return ScenarioEffect.idle()
        return ScenarioEffect(crash_tiles=self._tiles, active=(self._label,))


@dataclass(frozen=True)
class RegionOutage(ScenarioSpec):
    """A correlated rectangle of tiles crashes at one round.

    Models a particle-strike cluster or a voltage-island brownout: the
    whole ``rows x cols`` rectangle anchored at ``(row, col)`` dies at
    the start of ``round_index``.  Crashes are permanent.

    On non-grid topologies pass ``tiles`` explicitly instead of the
    rectangle (the rectangle form requires a topology exposing
    ``tile_at(row, col)``, i.e. ``Mesh2D``/``Torus2D``).
    """

    round_index: int
    row: int = 0
    col: int = 0
    rows: int = 1
    cols: int = 1
    tiles: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError(
                f"round_index must be >= 0, got {self.round_index}"
            )
        if self.tiles is None and (self.rows < 1 or self.cols < 1):
            raise ValueError(
                f"region must be at least 1x1, got {self.rows}x{self.cols}"
            )

    def resolve_tiles(self, topology) -> frozenset[int]:
        """The concrete tile set the outage kills on `topology`."""
        if self.tiles is not None:
            for tid in self.tiles:
                topology.validate_tile(tid)
            return frozenset(self.tiles)
        tile_at = getattr(topology, "tile_at", None)
        if tile_at is None:
            raise TypeError(
                f"RegionOutage rectangles need a grid topology with "
                f"tile_at(row, col); {type(topology).__name__} has none — "
                "pass tiles=(...) explicitly"
            )
        return frozenset(
            tile_at(self.row + dr, self.col + dc)
            for dr in range(self.rows)
            for dc in range(self.cols)
        )

    def instantiate(self, rng, topology) -> ScenarioState:
        return _RegionOutageState(
            self.label, self.round_index, self.resolve_tiles(topology)
        )


# -------------------------------------------------------------- composition


class _CompositeState(ScenarioState):
    def __init__(self, states: tuple[ScenarioState, ...]) -> None:
        self._states = states

    def begin_round(self, round_index: int) -> ScenarioEffect:
        overrides: dict[str, float] = {}
        down: set[tuple[int, int]] = set()
        crash: set[int] = set()
        active: list[str] = []
        for state in self._states:
            effect = state.begin_round(round_index)
            overrides.update(effect.fault_overrides)
            down |= effect.down_links
            crash |= effect.crash_tiles
            active.extend(effect.active)
        return ScenarioEffect(
            fault_overrides=overrides,
            down_links=frozenset(down),
            crash_tiles=frozenset(crash),
            active=tuple(active),
        )


@dataclass(frozen=True)
class Composite(ScenarioSpec):
    """A stack of scenarios applied in order (later overrides win)."""

    scenarios: tuple[ScenarioSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ValueError("Composite needs at least one scenario")
        for spec in self.scenarios:
            if not isinstance(spec, ScenarioSpec):
                raise TypeError(
                    f"Composite members must be ScenarioSpec, got "
                    f"{type(spec).__name__}"
                )

    @classmethod
    def of(cls, *scenarios: ScenarioSpec) -> "Composite":
        """Stack `scenarios` (sugar over the tuple field)."""
        return cls(scenarios=tuple(scenarios))

    def instantiate(self, rng, topology) -> ScenarioState:
        # Each member gets its own child stream so adding a scenario to
        # the stack never shifts the draws of the others.
        states = tuple(
            spec.instantiate(np.random.default_rng(child), topology)
            for spec, child in zip(
                self.scenarios,
                np.random.SeedSequence(
                    rng.integers(0, 2**63 - 1, dtype=np.int64)
                ).spawn(len(self.scenarios)),
            )
        )
        return _CompositeState(states)


#: Registered scenario kinds, keyed by the label used in metrics
#: attribution and the ``repro chaos`` CLI.
SCENARIO_KINDS: dict[str, type[ScenarioSpec]] = {
    "burst_upsets": BurstUpsets,
    "ramp_overflow": RampOverflow,
    "link_flap": LinkFlap,
    "region_outage": RegionOutage,
    "composite": Composite,
}

_KIND_BY_CLASS = {cls: kind for kind, cls in SCENARIO_KINDS.items()}


def describe_scenario(spec: ScenarioSpec | None) -> tuple | None:
    """Canonical tuple for ``SimConfig.describe`` (None passes through)."""
    if spec is None:
        return None
    return spec.describe()


def scenario_from_kind(kind: str, **params: object) -> ScenarioSpec:
    """Build a scenario by registry name (the CLI entry point).

    >>> scenario_from_kind("burst_upsets", p_upset=0.3).p_upset
    0.3
    """
    try:
        cls = SCENARIO_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_KINDS))
        raise ValueError(
            f"unknown scenario kind {kind!r}; known kinds: {known}"
        ) from None
    return cls(**params)  # type: ignore[arg-type]


def iter_flat(spec: ScenarioSpec) -> Iterable[ScenarioSpec]:
    """Yield `spec` and, for composites, every nested member."""
    yield spec
    if isinstance(spec, Composite):
        for member in spec.scenarios:
            yield from iter_flat(member)
