"""Fig 4-10: impact of buffer overflows and synchronization errors on the
MP3 latency.

Left panel: latency vs the packet-drop (overflow) probability — flat until
very high levels, then the encoding fails outright (point A at > 80 %:
every copy of some granule died and no tile kept one).
Right panel: latency vs sigma_synchr — the mean barely moves but the
variance (jitter) grows; synchronization errors never prevent completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.apps.base import run_on_noc
from repro.core.protocol import StochasticProtocol
from repro.experiments.common import (
    UNSET,
    ExperimentOptions,
    resolve_options,
)
from repro.faults import FaultConfig
from repro.mp3.parallel import ParallelMp3App
from repro.noc.engine import NocSimulator
from repro.noc.topology import Mesh2D
from repro.runners import SimTask


@dataclass(frozen=True)
class FailureImpactPoint:
    """One x-axis sample of either Fig 4-10 panel.

    Attributes:
        axis: "overflow" or "synchronization".
        level: p_overflow or sigma_synchr.
        completion_rate: runs whose bitstream was complete.
        latency_rounds_mean / latency_rounds_std: rounds to finish, over
            completed runs (std is the jitter the right panel shows).
    """

    axis: str
    level: float
    completion_rate: float
    latency_rounds_mean: float
    latency_rounds_std: float


def _run_impact_rep(
    fault_config: FaultConfig,
    n_frames: int,
    granule: int,
    seed: int,
    max_rounds: int,
) -> tuple[bool, int]:
    """One MP3 run under one fault configuration."""
    app = ParallelMp3App(n_frames=n_frames, granule=granule, seed=seed)
    simulator = NocSimulator(
        Mesh2D(4, 4),
        StochasticProtocol(0.5),
        fault_config,
        seed=seed,
        default_ttl=30,
    )
    result = run_on_noc(app, simulator, max_rounds=max_rounds)
    report = app.report()
    return report.encoding_complete, result.rounds


def _aggregate(axis: str, level: float, outcomes: list) -> FailureImpactPoint:
    finished = [o for o in outcomes if o[0]]
    pool = finished if finished else outcomes
    rounds = np.array([o[1] for o in pool], dtype=float)
    return FailureImpactPoint(
        axis=axis,
        level=level,
        completion_rate=len(finished) / len(outcomes),
        latency_rounds_mean=float(rounds.mean()),
        latency_rounds_std=float(rounds.std()),
    )


def _sweep_axis(
    axis: str,
    configs: list[tuple[float, FaultConfig]],
    n_frames: int,
    granule: int,
    repetitions: int,
    seed: int,
    max_rounds: int,
    opts: ExperimentOptions,
) -> list[FailureImpactPoint]:
    sweep = opts.make_runner()
    outcomes = iter(
        sweep.run(
            SimTask.call(
                _run_impact_rep,
                fault_config=config,
                n_frames=n_frames,
                granule=granule,
                seed=seed + 31 * rep,
                max_rounds=max_rounds,
                label=f"fig4_10 {axis}={level} rep={rep}",
            )
            for level, config in configs
            for rep in range(repetitions)
        )
    )
    return [
        _aggregate(axis, level, [next(outcomes) for _ in range(repetitions)])
        for level, _ in configs
    ]


def run_overflow(
    levels: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9),
    n_frames: int = 6,
    granule: int = 144,
    repetitions: int = 3,
    seed: int = 0,
    max_rounds: int = 1500,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> list[FailureImpactPoint]:
    """The left panel: latency vs buffer-overflow drop probability."""
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    return _sweep_axis(
        "overflow",
        [(level, FaultConfig(p_overflow=level)) for level in levels],
        n_frames,
        granule,
        repetitions,
        seed,
        max_rounds,
        opts,
    )


def run_synchronization(
    levels: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75),
    n_frames: int = 6,
    granule: int = 144,
    repetitions: int = 3,
    seed: int = 0,
    max_rounds: int = 1500,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> list[FailureImpactPoint]:
    """The right panel: latency vs sigma_synchr (jitter, not failure)."""
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    return _sweep_axis(
        "synchronization",
        [(level, FaultConfig(sigma_synchr=level)) for level in levels],
        n_frames,
        granule,
        repetitions,
        seed,
        max_rounds,
        opts,
    )
