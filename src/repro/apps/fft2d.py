"""Parallel 2-D FFT (thesis §4.1.2, Eq. 5, Fig 4-3).

The 2-D transform of an N x N image decimates into four (N/2) x (N/2)
sub-transforms (even/odd rows x even/odd columns); the root tile scatters
the sub-images, each worker computes its sub-transform with a from-scratch
radix-2 Cooley-Tukey kernel, and the root recombines with twiddle factors:

    X[k1,k2] = sum_{a,b in {0,1}} W_N^(a*k1) * W_N^(b*k2)
               * S_ab[k1 mod N/2, k2 mod N/2]

As with the Master-Slave study, workers may be duplicated; replicas emit
packets under their primary's identity so results deduplicate in-network.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.apps.base import Application, Placement
from repro.core.packet import BROADCAST, Packet
from repro.noc.tile import IPCore, TileContext

#: Task header: quadrant row-parity a, col-parity b, sub-image side M.
_TASK = struct.Struct(">iii")
#: Result header: quadrant a, b, side M (payload continues with data).
_RESULT = struct.Struct(">iii")

_RESULT_MSG_ID = 2_000_000


def fft_radix2(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT (power-of-two length).

    A from-scratch kernel so the reproduction does not lean on ``np.fft``
    for the system under test; validated against the direct DFT in tests.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[0]
    if n == 0 or n & (n - 1):
        raise ValueError(f"length must be a power of two, got {n}")
    # Bit-reversal permutation.
    levels = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for _ in range(levels):
        reversed_indices = (reversed_indices << 1) | (indices & 1)
        indices >>= 1
    result = x[reversed_indices].copy()
    # Butterfly passes.
    size = 2
    while size <= n:
        half = size // 2
        twiddle = np.exp(-2j * np.pi * np.arange(half) / size)
        blocks = result.reshape(n // size, size)
        even = blocks[:, :half].copy()
        odd = blocks[:, half:] * twiddle
        blocks[:, :half] = even + odd
        blocks[:, half:] = even - odd
        size *= 2
    return result


def fft2_radix2(image: np.ndarray) -> np.ndarray:
    """2-D FFT by row-column decomposition over :func:`fft_radix2`."""
    image = np.asarray(image, dtype=np.complex128)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {image.shape}")
    rows = np.stack([fft_radix2(row) for row in image])
    cols = np.stack([fft_radix2(col) for col in rows.T]).T
    return cols


def decimate_quadrants(image: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
    """Split an N x N image into the four parity sub-images S_ab."""
    n = image.shape[0]
    if image.shape != (n, n) or n < 2 or n & 1:
        raise ValueError(f"need an even square image, got shape {image.shape}")
    return {
        (a, b): np.ascontiguousarray(image[a::2, b::2])
        for a in (0, 1)
        for b in (0, 1)
    }


def recombine_quadrants(
    sub_ffts: dict[tuple[int, int], np.ndarray], n: int
) -> np.ndarray:
    """Assemble the N x N FFT from the four sub-transforms (Eq. 5, 2-D)."""
    m = n // 2
    k1 = np.arange(n).reshape(-1, 1)
    k2 = np.arange(n).reshape(1, -1)
    result = np.zeros((n, n), dtype=np.complex128)
    for (a, b), sub in sub_ffts.items():
        if sub.shape != (m, m):
            raise ValueError(
                f"quadrant ({a},{b}) has shape {sub.shape}, expected {(m, m)}"
            )
        twiddle = np.exp(-2j * np.pi * (a * k1 + b * k2) / n)
        result += twiddle * sub[k1 % m, k2 % m]
    return result


class FftRootCore(IPCore):
    """Scatters quadrants, gathers sub-transforms, assembles the answer."""

    def __init__(
        self,
        image: np.ndarray,
        worker_tiles: dict[tuple[int, int], list[int]],
    ) -> None:
        """
        Args:
            image: N x N real or complex input, N a power of two >= 2.
            worker_tiles: quadrant -> replica tile list, covering exactly
                the four quadrants (0,0), (0,1), (1,0), (1,1).
        """
        image = np.asarray(image, dtype=np.complex128)
        n = image.shape[0]
        if image.shape != (n, n) or n < 2 or n & (n - 1):
            raise ValueError(
                f"image must be square with power-of-two side, got {image.shape}"
            )
        expected = {(a, b) for a in (0, 1) for b in (0, 1)}
        if set(worker_tiles) != expected:
            raise ValueError("worker_tiles must cover exactly the 4 quadrants")
        if any(not replicas for replicas in worker_tiles.values()):
            raise ValueError("every quadrant needs at least one worker tile")
        self.image = image
        self.n = n
        self.worker_tiles = {q: list(t) for q, t in worker_tiles.items()}
        self.sub_ffts: dict[tuple[int, int], np.ndarray] = {}
        self._scattered = False
        self._result: np.ndarray | None = None

    def on_start(self, ctx: TileContext) -> None:
        # Quadrant tasks are broadcast; each worker (and replica) filters by
        # its own quadrant, so duplication adds no unique messages (§4.1.3).
        for (a, b), sub in decimate_quadrants(self.image).items():
            payload = _TASK.pack(a, b, sub.shape[0]) + sub.tobytes()
            ctx.send(BROADCAST, payload)
        self._scattered = True

    def on_receive(self, ctx: TileContext, packet: Packet) -> None:
        if len(packet.payload) < _RESULT.size:
            return
        a, b, m = _RESULT.unpack(packet.payload[: _RESULT.size])
        if (a, b) not in self.worker_tiles or m != self.n // 2:
            return
        data = np.frombuffer(
            packet.payload[_RESULT.size :], dtype=np.complex128
        ).reshape(m, m)
        self.sub_ffts.setdefault((a, b), data)

    @property
    def complete(self) -> bool:
        return self._scattered and len(self.sub_ffts) == 4

    @property
    def result(self) -> np.ndarray:
        """The assembled N x N FFT; raises until all quadrants arrived."""
        if not self.complete:
            raise RuntimeError(
                f"only {len(self.sub_ffts)}/4 quadrants received"
            )
        if self._result is None:
            self._result = recombine_quadrants(self.sub_ffts, self.n)
        return self._result


class FftWorkerCore(IPCore):
    """Computes the 2-D FFT of one parity sub-image."""

    def __init__(
        self, root_tile: int, primary_tile: int, quadrant: tuple[int, int]
    ) -> None:
        self.root_tile = root_tile
        self.primary_tile = primary_tile
        self.quadrant = quadrant
        self._done = False

    def on_receive(self, ctx: TileContext, packet: Packet) -> None:
        if self._done or len(packet.payload) < _TASK.size:
            return
        a, b, m = _TASK.unpack(packet.payload[: _TASK.size])
        if (a, b) != self.quadrant:
            return
        sub = np.frombuffer(
            packet.payload[_TASK.size :], dtype=np.complex128
        ).reshape(m, m)
        transformed = fft2_radix2(sub)
        quadrant_code = 2 * a + b
        ctx.send(
            self.root_tile,
            _RESULT.pack(a, b, m) + transformed.tobytes(),
            source=self.primary_tile,
            message_id=_RESULT_MSG_ID + quadrant_code,
        )
        self._done = True

    @property
    def complete(self) -> bool:
        return self._done


class Fft2dApp(Application):
    """The §4.1.2 setup: root + 4 workers (optionally duplicated) on 4x4.

    Args:
        image: the N x N input.
        root_tile: placement of the root IP.
        worker_tiles: quadrant -> replica tiles; ``None`` uses the default
            4x4 layout (root at 5; primaries at corners, replicas opposite).
    """

    def __init__(
        self,
        image: np.ndarray,
        root_tile: int = 5,
        worker_tiles: dict[tuple[int, int], list[int]] | None = None,
        duplicate: bool = True,
    ) -> None:
        if worker_tiles is None:
            if duplicate:
                worker_tiles = {
                    (0, 0): [0, 10],
                    (0, 1): [3, 9],
                    (1, 0): [12, 6],
                    (1, 1): [15, 2],
                }
            else:
                worker_tiles = {
                    (0, 0): [0],
                    (0, 1): [3],
                    (1, 0): [12],
                    (1, 1): [15],
                }
        self.root_tile = root_tile
        self.root = FftRootCore(image, worker_tiles)
        self.workers: list[tuple[int, FftWorkerCore]] = []
        for quadrant, replicas in self.root.worker_tiles.items():
            primary = replicas[0]
            for tile in replicas:
                if tile == root_tile:
                    raise ValueError("worker cannot share the root's tile")
                self.workers.append(
                    (tile, FftWorkerCore(root_tile, primary, quadrant))
                )

    def placements(self) -> list[Placement]:
        result = [Placement(self.root_tile, self.root)]
        result.extend(Placement(tile, core) for tile, core in self.workers)
        return result

    @property
    def critical_tiles(self) -> frozenset[int]:
        return frozenset({self.root_tile})

    @property
    def complete(self) -> bool:
        return self.root.complete

    @property
    def result(self) -> np.ndarray:
        return self.root.result
