"""Tests for scheduled mid-run crash injection (§4.1.3's early-crash note)."""

import pytest

from repro.core.packet import BROADCAST
from repro.core.protocol import FloodingProtocol, StochasticProtocol
from repro.noc import Mesh2D, NocSimulator
from tests.test_engine import OneShotProducer, Sink


class TestScheduling:
    def test_tile_crashes_at_round(self):
        sim = NocSimulator(Mesh2D(3, 3), FloodingProtocol(), seed=0)
        sim.schedule_tile_crash(2, 4)
        sim.mount(0, OneShotProducer(BROADCAST, ttl=10))
        sim.run(1, until=lambda s: False)
        assert sim.tiles[4].alive
        sim2 = NocSimulator(Mesh2D(3, 3), FloodingProtocol(), seed=0)
        sim2.schedule_tile_crash(2, 4)
        sim2.mount(0, OneShotProducer(BROADCAST, ttl=10))
        sim2.run(3, until=lambda s: False)
        assert not sim2.tiles[4].alive

    def test_link_crash_takes_one_direction(self):
        sim = NocSimulator(Mesh2D(2, 2), FloodingProtocol(), seed=0)
        sim.schedule_link_crash(0, (0, 1))
        sink = Sink()
        sim.mount(0, OneShotProducer(3, ttl=5))
        sim.mount(3, sink)
        result = sim.run(10)
        assert result.completed  # 0 -> 2 -> 3 survives
        assert result.stats.dead_link_drops > 0

    def test_validation(self):
        sim = NocSimulator(Mesh2D(2, 2), FloodingProtocol(), seed=0)
        with pytest.raises(ValueError):
            sim.schedule_tile_crash(-1, 0)
        with pytest.raises(ValueError):
            sim.schedule_tile_crash(0, 9)
        with pytest.raises(ValueError):
            sim.schedule_link_crash(-1, (0, 1))
        with pytest.raises(ValueError):
            sim.schedule_link_crash(0, (0, 3))  # not a mesh link

    def test_double_scheduled_tile_crash_is_idempotent(self):
        # Regression: scheduling the same tile twice used to crash() it
        # twice, corrupting liveness bookkeeping.  Now only the first
        # takes effect, whether duplicated in one round or across two.
        sim = NocSimulator(Mesh2D(3, 3), FloodingProtocol(), seed=0)
        sim.schedule_tile_crash(2, 4)
        sim.schedule_tile_crash(2, 4)
        sim.schedule_tile_crash(3, 4)
        sim.mount(0, OneShotProducer(BROADCAST, ttl=10))
        result = sim.run(6, until=lambda s: False)
        assert not sim.tiles[4].alive
        assert result.stats is sim.stats  # run completed without error

    def test_double_scheduled_link_crash_is_idempotent(self):
        sim = NocSimulator(Mesh2D(2, 2), FloodingProtocol(), seed=0)
        sim.schedule_link_crash(1, (0, 1))
        sim.schedule_link_crash(1, (0, 1))
        sim.schedule_link_crash(2, (0, 1))
        sim.mount(0, OneShotProducer(BROADCAST, ttl=10))
        sim.run(5, until=lambda s: False)
        assert not sim._link_alive(0, 1)
        assert sim._link_alive(1, 0)  # the reverse direction survives

    def test_reference_run_unchanged_by_duplicate_scheduling(self):
        def run_once(duplicate):
            sim = NocSimulator(
                Mesh2D(3, 3), StochasticProtocol(0.6), seed=5, default_ttl=12
            )
            sim.schedule_tile_crash(2, 4)
            if duplicate:
                sim.schedule_tile_crash(2, 4)
            sim.mount(0, OneShotProducer(8, ttl=12))
            result = sim.run(12, until=lambda s: False)
            return result.stats.transmissions_delivered

        assert run_once(False) == run_once(True)


class TestProtocolResilience:
    def test_gossip_survives_midrun_region_loss(self):
        # The centre of the mesh dies after the broadcast is underway;
        # copies already outside the region complete the delivery.
        sim = NocSimulator(
            Mesh2D(4, 4), StochasticProtocol(0.6), seed=1, default_ttl=24
        )
        sink = Sink()
        sim.mount(0, OneShotProducer(15))
        sim.mount(15, sink)
        for tile in (5, 6, 9, 10):
            sim.schedule_tile_crash(3, tile)
        result = sim.run(80)
        assert result.completed

    def test_early_crashes_can_kill_the_message(self):
        # Thesis: "if a significant number of tile crashes occurs during
        # the early stages ... the applications will fail completely".
        # Crash the producer's entire neighborhood in round 1, before the
        # message can escape the corner.
        sim = NocSimulator(
            Mesh2D(4, 4), StochasticProtocol(0.3), seed=3, default_ttl=24
        )
        sink = Sink()
        sim.mount(0, OneShotProducer(15))
        sim.mount(15, sink)
        for tile in (1, 4, 5):
            sim.schedule_tile_crash(1, tile)
        result = sim.run(80)
        assert not result.completed

    def test_buffered_packets_lost_with_the_tile(self):
        sim = NocSimulator(Mesh2D(1, 3), FloodingProtocol(), seed=0)
        sink = Sink()
        sim.mount(0, OneShotProducer(2, ttl=10))
        sim.mount(2, sink)
        # Tile 1 is the only relay; kill it the round after it latches
        # the packet but before it can forward.
        sim.schedule_tile_crash(1, 1)
        result = sim.run(15)
        assert not result.completed
