"""Tests for the packet format and factory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import BROADCAST, Packet, PacketFactory
from repro.crc import CRC8, CRC32


class TestPacketCreation:
    def test_fields(self):
        packet = Packet.create(3, 7, 42, b"hello", ttl=5)
        assert packet.source == 3
        assert packet.destination == 7
        assert packet.message_id == 42
        assert packet.payload == b"hello"
        assert packet.ttl == 5
        assert packet.hop_count == 0

    def test_key(self):
        packet = Packet.create(3, 7, 42, b"x", ttl=5)
        assert packet.key == (3, 42)

    def test_intact_after_creation(self):
        assert Packet.create(0, 1, 0, b"payload", ttl=1).is_intact()

    def test_size_includes_header_and_crc(self):
        packet = Packet.create(0, 1, 0, b"abcd", ttl=1)
        # 20-byte header + 4 payload + 2 CRC bytes.
        assert packet.size_bits == 8 * (20 + 4 + 2)

    def test_ttl_validation(self):
        with pytest.raises(ValueError, match="ttl"):
            Packet.create(0, 1, 0, b"", ttl=0)

    def test_destination_validation(self):
        with pytest.raises(ValueError, match="destination"):
            Packet.create(0, -5, 0, b"", ttl=1)

    def test_broadcast_destination_allowed(self):
        packet = Packet.create(0, BROADCAST, 0, b"", ttl=1)
        assert packet.is_for(0)
        assert packet.is_for(99)

    def test_unicast_is_for(self):
        packet = Packet.create(0, 7, 0, b"", ttl=1)
        assert packet.is_for(7)
        assert not packet.is_for(8)

    def test_custom_crc(self):
        packet = Packet.create(0, 1, 0, b"x", ttl=1, crc=CRC32)
        assert packet.is_intact()
        assert packet.size_bits == 8 * (20 + 1 + 4)


class TestPacketCopies:
    def test_copy_for_link_increments_hops(self):
        packet = Packet.create(0, 1, 0, b"x", ttl=4)
        copy = packet.copy_for_link()
        assert copy.hop_count == 1
        assert copy.copy_for_link().hop_count == 2
        assert packet.hop_count == 0

    def test_copy_shares_identity(self):
        packet = Packet.create(0, 1, 9, b"x", ttl=4)
        copy = packet.copy_for_link()
        assert copy.key == packet.key
        assert copy.is_intact()

    def test_ttl_independent_between_copies(self):
        packet = Packet.create(0, 1, 0, b"x", ttl=4)
        copy = packet.copy_for_link()
        packet.ttl -= 1
        assert copy.ttl == 4

    def test_scrambled_detected(self):
        packet = Packet.create(0, 1, 0, b"payload", ttl=2)
        bad = bytearray(packet.codeword)
        bad[5] ^= 0x40
        scrambled = packet.scrambled(bytes(bad))
        assert not scrambled.is_intact()
        assert packet.is_intact()  # original untouched

    def test_scrambled_length_check(self):
        packet = Packet.create(0, 1, 0, b"payload", ttl=2)
        with pytest.raises(ValueError, match="length"):
            packet.scrambled(b"short")


class TestPacketFactory:
    def test_monotone_ids(self):
        factory = PacketFactory(3)
        ids = [factory.make(1, b"x").message_id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_default_ttl(self):
        factory = PacketFactory(3, default_ttl=9)
        assert factory.make(1, b"x").ttl == 9
        assert factory.make(1, b"x", ttl=2).ttl == 2

    def test_pinned_identity(self):
        factory = PacketFactory(5)
        packet = factory.make(1, b"x", source=2, message_id=77)
        assert packet.key == (2, 77)
        # The internal counter does not advance for pinned ids.
        assert factory.make(1, b"y").message_id == 0

    def test_id_offset(self):
        factory = PacketFactory(0, id_offset=100)
        assert factory.make(1, b"x").message_id == 100

    def test_stream_ordering(self):
        factory = PacketFactory(0)
        packets = list(factory.stream(1, [b"a", b"b", b"c"]))
        assert [p.payload for p in packets] == [b"a", b"b", b"c"]
        assert [p.message_id for p in packets] == [0, 1, 2]

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            PacketFactory(0, default_ttl=0)

    def test_crc_choice_propagates(self):
        factory = PacketFactory(0, crc=CRC8)
        assert factory.make(1, b"x").crc is CRC8


@given(
    source=st.integers(min_value=0, max_value=1000),
    destination=st.integers(min_value=-1, max_value=1000),
    message_id=st.integers(min_value=0, max_value=2**40),
    payload=st.binary(max_size=128),
    ttl=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_property_created_packets_intact(source, destination, message_id, payload, ttl):
    packet = Packet.create(source, destination, message_id, payload, ttl)
    assert packet.is_intact()
    assert packet.key == (source, message_id)
    assert packet.size_bits % 8 == 0
