"""Fig 3-1: message spreading in a 1000-node fully connected network.

The thesis plots nodes-reached vs gossip rounds for fan-out-1 push gossip
on the complete graph, showing saturation in < 20 rounds for n = 1000 and
agreement with the deterministic recurrence (Eq. 1).  We additionally
check the S_n = log2 n + ln n estimate across a range of n (the §3.1
asymptotic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.theory import (
    deterministic_spread,
    expected_rounds_to_inform_all,
    simulate_rumor_spread,
)
from repro.experiments.common import (
    UNSET,
    ExperimentOptions,
    resolve_options,
)
from repro.runners import SimTask


@dataclass(frozen=True)
class SpreadCurve:
    """Simulated vs deterministic spread for one population size.

    Attributes:
        n: population size.
        simulated: mean informed count per round over the repetitions.
        deterministic: the Eq. 1 iterates over the same rounds.
        rounds_to_all: mean rounds until everyone was informed.
        predicted_rounds: the log2 n + ln n estimate.
    """

    n: int
    simulated: list[float]
    deterministic: list[float]
    rounds_to_all: float
    predicted_rounds: float


def run(
    n: int = 1000,
    repetitions: int = 5,
    seed: int = 0,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> SpreadCurve:
    """Reproduce the Fig 3-1 curve for one population size."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    sweep = opts.make_runner()
    runs = sweep.run(
        SimTask.call(
            simulate_rumor_spread,
            n=n,
            seed=seed + rep,
            label=f"fig3_1 n={n} rep={rep}",
        )
        for rep in range(repetitions)
    )
    rounds_to_all = sum(len(counts) - 1 for counts in runs) / len(runs)
    horizon = max(len(counts) for counts in runs)
    # Average informed counts, extending finished runs at n.
    simulated = [
        sum(
            (counts[t] if t < len(counts) else n) for counts in runs
        )
        / len(runs)
        for t in range(horizon)
    ]
    return SpreadCurve(
        n=n,
        simulated=simulated,
        deterministic=deterministic_spread(n, horizon - 1),
        rounds_to_all=rounds_to_all,
        predicted_rounds=expected_rounds_to_inform_all(n),
    )


def run_scaling(
    sizes: tuple[int, ...] = (64, 256, 1000, 4096),
    repetitions: int = 3,
    seed: int = 0,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> list[SpreadCurve]:
    """The §3.1 asymptotic across population sizes."""
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    shared = opts.with_runner(opts.make_runner())
    return [run(n, repetitions, seed, options=shared) for n in sizes]
