"""Tests for the Master-Slave pi computation (§4.1.1)."""

import math

import pytest

from repro.apps.master_slave import MasterSlavePiApp, pi_partial_sum
from repro.core.protocol import FloodingProtocol, StochasticProtocol
from repro.faults import CrashPlan
from repro.noc.engine import NocSimulator
from repro.noc.topology import Mesh2D


class TestPartialSum:
    def test_full_range_approximates_pi(self):
        assert pi_partial_sum(0, 50_000, 50_000) == pytest.approx(
            math.pi, abs=1e-8
        )

    def test_partition_sums_to_whole(self):
        n = 1000
        whole = pi_partial_sum(0, n, n)
        parts = sum(
            pi_partial_sum(lo, lo + 250, n) for lo in range(0, n, 250)
        )
        assert parts == pytest.approx(whole)

    def test_validation(self):
        with pytest.raises(ValueError):
            pi_partial_sum(5, 3, 10)
        with pytest.raises(ValueError):
            pi_partial_sum(0, 20, 10)


class TestDefaultLayout:
    def test_tile_assignment(self):
        app = MasterSlavePiApp.default_5x5()
        tiles = [p.tile_id for p in app.placements()]
        assert len(tiles) == len(set(tiles)) == 17  # master + 8*2 replicas
        assert app.master_tile == 12

    def test_unduplicated_layout(self):
        app = MasterSlavePiApp.default_5x5(duplicate=False)
        assert len(app.placements()) == 9

    def test_term_ranges_partition(self):
        app = MasterSlavePiApp.default_5x5(n_terms=1000)
        ranges = [app.master.term_range(k) for k in range(8)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1000
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            MasterSlavePiApp.default_5x5(n_slaves=0)
        with pytest.raises(ValueError):
            MasterSlavePiApp.default_5x5(n_slaves=13, duplicate=True)


class TestExecution:
    def test_computes_pi_fault_free(self):
        app = MasterSlavePiApp.default_5x5(n_terms=2000)
        sim = NocSimulator(Mesh2D(5, 5), StochasticProtocol(0.5), seed=0)
        app.deploy(sim)
        sim.run(200, until=lambda s: app.master.complete)
        assert app.complete
        assert app.pi_error < 1e-6

    def test_latency_in_thesis_band(self):
        # Thesis §4.1.3: 6-9 rounds at p = 0.5 for Master-Slave.
        rounds = []
        for seed in range(5):
            app = MasterSlavePiApp.default_5x5(n_terms=200)
            sim = NocSimulator(Mesh2D(5, 5), StochasticProtocol(0.5), seed=seed)
            app.deploy(sim)
            result = sim.run(100, until=lambda s: app.master.complete)
            assert app.complete
            rounds.append(result.rounds)
        assert 4 <= sum(rounds) / len(rounds) <= 14

    def test_survives_replica_crash(self):
        app = MasterSlavePiApp.default_5x5(n_terms=500)
        # Kill the *primary* replica of every other slave (killing all
        # eight primaries would isolate some surviving replicas, which is
        # a connectivity failure, not a protocol one).
        primaries = frozenset(
            replicas[0]
            for index, replicas in enumerate(app.master.slave_tiles)
            if index % 2 == 0
        )
        assert Mesh2D(5, 5).is_connected(excluding=primaries)
        sim = NocSimulator(
            Mesh2D(5, 5),
            FloodingProtocol(),
            seed=1,
            crash_plan=CrashPlan(dead_tiles=primaries),
        )
        app.deploy(sim)
        sim.run(200, until=lambda s: app.master.complete)
        assert app.complete
        assert app.pi_error < 1e-6

    def test_fails_when_both_replicas_die(self):
        app = MasterSlavePiApp.default_5x5(n_terms=200)
        dead = frozenset(app.master.slave_tiles[0])  # both replicas of slave 0
        sim = NocSimulator(
            Mesh2D(5, 5),
            FloodingProtocol(),
            seed=2,
            crash_plan=CrashPlan(dead_tiles=dead),
        )
        app.deploy(sim)
        result = sim.run(60, until=lambda s: app.master.complete)
        assert not result.completed
        assert len(app.master.partials) == 7

    def test_duplication_does_not_add_unique_messages(self):
        counts = {}
        for duplicate in (False, True):
            app = MasterSlavePiApp.default_5x5(n_terms=200, duplicate=duplicate)
            sim = NocSimulator(Mesh2D(5, 5), StochasticProtocol(0.5), seed=3)
            app.deploy(sim)
            sim.run(200, until=lambda s: app.master.complete)
            counts[duplicate] = sim.stats.unique_messages_created
        assert counts[False] == counts[True] == 16  # 8 tasks + 8 results

    def test_pi_estimate_raises_until_complete(self):
        app = MasterSlavePiApp.default_5x5()
        with pytest.raises(RuntimeError, match="partials"):
            _ = app.pi_estimate

    def test_critical_tiles_only_master(self):
        app = MasterSlavePiApp.default_5x5()
        assert app.critical_tiles == frozenset({12})


class TestValidation:
    def test_slave_on_master_tile_rejected(self):
        with pytest.raises(ValueError, match="master"):
            MasterSlavePiApp(master_tile=0, slave_tiles=[[0]])

    def test_empty_slaves_rejected(self):
        with pytest.raises(ValueError):
            MasterSlavePiApp(master_tile=0, slave_tiles=[])
        with pytest.raises(ValueError):
            MasterSlavePiApp(master_tile=0, slave_tiles=[[]])

    def test_too_few_terms_rejected(self):
        with pytest.raises(ValueError):
            MasterSlavePiApp(master_tile=0, slave_tiles=[[1], [2]], n_terms=1)
