"""Bus arbitration policies.

A shared medium needs mutual exclusion (thesis Ch. 1); the arbiter decides,
among the modules with pending transfers, who drives the bus next.  The
thesis ignores arbitration *overhead* (it is negligible next to transfer
time) but the *policy* still shapes latency under contention, so three
classic schemes are provided for the ablation benches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class Arbiter(ABC):
    """Chooses the next bus master among requesting module ids."""

    @abstractmethod
    def grant(self, requesters: list[int]) -> int | None:
        """Return the module granted the bus, or None to idle this slot.

        `requesters` is sorted ascending and non-empty unless the policy
        inserts idle slots (TDMA may be called with an empty list).
        """

    def reset(self) -> None:
        """Clear any internal rotation state before a new run."""


class RoundRobinArbiter(Arbiter):
    """Fair rotation: the grant pointer advances past each winner."""

    def __init__(self) -> None:
        self._last_granted = -1

    def reset(self) -> None:
        self._last_granted = -1

    def grant(self, requesters: list[int]) -> int | None:
        if not requesters:
            return None
        for candidate in requesters:
            if candidate > self._last_granted:
                self._last_granted = candidate
                return candidate
        # Wrap around to the lowest requester.
        winner = requesters[0]
        self._last_granted = winner
        return winner


class FixedPriorityArbiter(Arbiter):
    """Lowest module id always wins (can starve high ids under load)."""

    def grant(self, requesters: list[int]) -> int | None:
        if not requesters:
            return None
        return requesters[0]


class TdmaArbiter(Arbiter):
    """Time-division slots: module ``k`` owns every ``n``-th slot.

    A slot whose owner has nothing to send is *wasted* (the bus idles),
    which is the classic TDMA latency penalty under bursty traffic.
    """

    def __init__(self, n_modules: int) -> None:
        if n_modules < 1:
            raise ValueError(f"n_modules must be >= 1, got {n_modules}")
        self.n_modules = n_modules
        self._slot = 0

    def reset(self) -> None:
        self._slot = 0

    def grant(self, requesters: list[int]) -> int | None:
        owner = self._slot % self.n_modules
        self._slot += 1
        return owner if owner in requesters else None
