"""Tests for the §3.3 metrics and §4.1.4 technology constants."""

import pytest

from repro.energy import (
    TECH_025UM,
    EnergyBreakdown,
    TechnologyLibrary,
    communication_energy_j,
    energy_delay_product,
    round_duration_s,
)
from repro.noc.link import DEFAULT_LINK, LinkModel


class TestRoundDuration:
    def test_eq2(self):
        # T_R = N * S / f
        assert round_duration_s(2, 500, 1e9) == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            round_duration_s(0, 1, 1)
        with pytest.raises(ValueError):
            round_duration_s(1, 0, 1)
        with pytest.raises(ValueError):
            round_duration_s(1, 1, 0)


class TestCommunicationEnergy:
    def test_eq3(self):
        assert communication_energy_j(100, 512, 2.4e-10) == pytest.approx(
            100 * 512 * 2.4e-10
        )

    def test_zero_packets(self):
        assert communication_energy_j(0, 512, 2.4e-10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            communication_energy_j(-1, 1, 1)
        with pytest.raises(ValueError):
            communication_energy_j(1, 0, 1)
        with pytest.raises(ValueError):
            communication_energy_j(1, 1, -1)


class TestEnergyDelay:
    def test_product(self):
        assert energy_delay_product(2e-10, 3e-6) == pytest.approx(6e-16)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_delay_product(-1, 1)


class TestTechnologyLibrary:
    def test_thesis_constants(self):
        assert TECH_025UM.link_frequency_hz == pytest.approx(381e6)
        assert TECH_025UM.link_energy_per_bit_j == pytest.approx(2.4e-10)
        assert TECH_025UM.bus_frequency_hz == pytest.approx(43e6)
        assert TECH_025UM.bus_energy_per_bit_j == pytest.approx(21.6e-10)

    def test_link_advantage(self):
        # The short link beats the chip-length bus on both axes (§4.1.4).
        assert TECH_025UM.link_frequency_hz / TECH_025UM.bus_frequency_hz > 8
        assert (
            TECH_025UM.bus_energy_per_bit_j / TECH_025UM.link_energy_per_bit_j
            == pytest.approx(9.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TechnologyLibrary("bad", 0, 1, 1, 1)


class TestEnergyBreakdown:
    def test_total(self):
        breakdown = EnergyBreakdown(computation_j=3.0, communication_j=1.0)
        assert breakdown.total_j == 4.0
        assert breakdown.communication_fraction == 0.25

    def test_zero_total(self):
        assert EnergyBreakdown(0.0, 0.0).communication_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(-1.0, 0.0)


class TestLinkModel:
    def test_thesis_defaults(self):
        assert DEFAULT_LINK.frequency_hz == pytest.approx(381e6)
        assert DEFAULT_LINK.energy_per_bit_j == pytest.approx(2.4e-10)

    def test_transfer_time_ceil(self):
        link = LinkModel(frequency_hz=1e6, width_bits=32)
        assert link.transfer_time_s(32) == pytest.approx(1e-6)
        assert link.transfer_time_s(33) == pytest.approx(2e-6)
        assert link.transfer_time_s(0) == 0.0

    def test_transfer_energy(self):
        link = LinkModel(energy_per_bit_j=2e-10)
        assert link.transfer_energy_j(1000) == pytest.approx(2e-7)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(frequency_hz=0)
        with pytest.raises(ValueError):
            LinkModel(energy_per_bit_j=-1)
        with pytest.raises(ValueError):
            LinkModel(width_bits=0)
        with pytest.raises(ValueError):
            DEFAULT_LINK.transfer_time_s(-1)
        with pytest.raises(ValueError):
            DEFAULT_LINK.transfer_energy_j(-1)
