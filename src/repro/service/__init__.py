"""Simulation-as-a-service: async job submission + durable results DB.

This package is the service layer in front of the sweep machinery
(:mod:`repro.runners`):

* :class:`ResultsDB` (``repro.service.db``) — a SQLite (WAL) store of
  completed tasks, their full :meth:`SimConfig.describe` provenance and
  per-round metrics, written through by :class:`SweepRunner` while the
  content-hashed pickle cache stays the hot read path.  Query it with
  SQL via :meth:`ResultsDB.query` or ``repro db query``.
* :class:`JobQueue` (``repro.service.jobs``) — an asyncio front-end
  over one shared runner: ``submit``/``status``/``cancel``/``stream``
  with priorities, per-task completion streaming and checkpoint-backed
  resume.

See ``docs/service.md`` for the schema, job lifecycle and SQL cookbook.
"""

from repro.service.db import ResultsDB, as_results_db
from repro.service.jobs import JobQueue, JobState, JobStatus
from repro.service.schema import SCHEMA_VERSION

__all__ = [
    "SCHEMA_VERSION",
    "JobQueue",
    "JobState",
    "JobStatus",
    "ResultsDB",
    "as_results_db",
]
