"""The process-parallel, fault-tolerant sweep runner.

Every thesis figure is a Monte-Carlo sweep — repetitions x fault levels x
forward probabilities — whose individual simulations are independent.
:class:`SweepRunner` executes such a sweep as a batch of
:class:`SimTask` specs:

* **parallel** — tasks fan out over a ``ProcessPoolExecutor`` when
  ``n_workers > 1``, with a transparent serial fallback when process
  pools are unavailable (sandboxes without ``/dev/shm``, missing
  ``sem_open``, …);
* **deterministic** — a task's result depends only on its spec.  Task
  functions receive an explicit ``seed`` (either carried by the spec or
  derived from the runner's ``base_seed`` via
  ``numpy.random.SeedSequence.spawn`` by task *index*), so results are
  bit-identical regardless of worker count or completion order;
* **memoized** — with a ``cache_dir``, completed tasks are stored on
  disk keyed by a content hash of the spec (function, parameters, seed);
  a warm-cache rerun of a sweep executes zero new simulations, which the
  :attr:`SweepRunner.tasks_executed` counter makes checkable;
* **fault-tolerant** — with ``max_attempts > 1`` a task that raises (or,
  on the pool path, exceeds ``task_timeout_s``) is retried with
  exponential backoff plus jitter; attempts are bounded and the final
  failure surfaces as :class:`RetryExhaustedError` naming the task.
  Results are **checkpointed incrementally**: each completed cell is
  written to the cache the moment it finishes, so an interrupted
  campaign resumes without rerunning finished work;
* **self-healing** — the pool path is driven by
  :class:`repro.runners.supervisor.FleetSupervisor`: a worker death
  (``BrokenProcessPool``) rebuilds the pool with capped exponential
  backoff and resubmits the in-flight tasks, a task that repeatedly
  crashes its worker is quarantined as *poisoned* instead of aborting
  its siblings, and a persistently unhealthy pool degrades to serial
  in-process execution with a loud warning (see ``docs/operations.md``);
* **recorded** — with a ``db`` (a :class:`repro.service.ResultsDB` or a
  path to one), every completed task — executed or served from cache —
  is written through to the SQLite results/provenance store under the
  same content hash the pickle cache uses, and every :meth:`run` call
  opens/closes a campaign row.  The pickle cache stays the hot read
  path; the database is the durable, SQL-queryable record (see
  ``docs/service.md``).  Per-task completion callbacks (``on_result``)
  let a service layer stream results as they land.

Task functions must be module-level (importable by qualified name, so
workers can unpickle them) and pure given their parameters and seed: no
reads of global mutable state, no dependence on execution order.
"""

from __future__ import annotations

import importlib
import random
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.service.db import ResultsDB

import numpy as np

from repro.runners.cache import ResultCache
from repro.runners.hashing import digest

#: Bump when the task execution semantics change in a way that makes old
#: cached results unreplayable (participates in every cache key).
CACHE_SCHEMA_VERSION = 1


class RetryExhaustedError(RuntimeError):
    """A sweep task failed on every allowed attempt.

    Attributes:
        task: the failing :class:`SimTask`.
        attempts: how many times it was tried.
        last_error: the exception of the final attempt (also the
            ``__cause__``), or ``None`` when the final attempt timed out.
    """

    def __init__(
        self, task: "SimTask", attempts: int, last_error: BaseException | None
    ) -> None:
        reason = (
            f"{type(last_error).__name__}: {last_error}"
            if last_error is not None
            else "timed out"
        )
        super().__init__(
            f"sweep task {task.fn!r} (label={task.label!r}, "
            f"seed={task.seed}) failed after {attempts} attempt(s): {reason}"
        )
        self.task = task
        self.attempts = attempts
        self.last_error = last_error


def _qualified_name(fn: Callable[..., Any]) -> str:
    name = f"{fn.__module__}:{fn.__qualname__}"
    if "<" in name or "." in fn.__qualname__:
        raise ValueError(
            f"task functions must be module-level (picklable by qualified "
            f"name); got {name!r}"
        )
    return name


@dataclass(frozen=True)
class SimTask:
    """One picklable, content-hashable unit of sweep work.

    Attributes:
        fn: the task function as ``"module:function"`` — resolved by
            import in the worker process, so the spec itself stays tiny.
        params: keyword arguments for the call.  Values must be
            canonicalisable by :mod:`repro.runners.hashing` (primitives,
            containers, dataclasses, ``SimConfig``/``Topology``/…).
        seed: explicit RNG seed passed to the function as ``seed=``;
            ``None`` lets the runner derive one from its ``base_seed``
            (or call the function without a seed argument if the runner
            has no ``base_seed`` either).
        label: free-form display tag; excluded from the cache key.
    """

    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    label: str = ""

    @classmethod
    def call(
        cls,
        fn: Callable[..., Any],
        *,
        seed: int | None = None,
        label: str = "",
        **params: Any,
    ) -> "SimTask":
        """Spec the call ``fn(**params, seed=seed)``.

        >>> from repro.core.theory import simulate_rumor_spread
        >>> task = SimTask.call(simulate_rumor_spread, n=64, seed=3)
        >>> task.fn
        'repro.core.theory:simulate_rumor_spread'
        """
        return cls(
            fn=_qualified_name(fn), params=dict(params), seed=seed, label=label
        )

    def resolve(self) -> Callable[..., Any]:
        """Import and return the task function."""
        module_name, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attr)
        except AttributeError:
            raise ValueError(
                f"task function {self.fn!r} not found; sweep task functions "
                "must be module-level"
            ) from None

    def execute(self) -> Any:
        """Run the task in the current process."""
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.resolve()(**kwargs)

    def cache_key(self) -> str:
        """Content hash of (schema version, function, params, seed)."""
        return digest(
            (CACHE_SCHEMA_VERSION, self.fn, dict(self.params), self.seed)
        )

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimTask):
            return NotImplemented
        return (
            self.fn == other.fn
            and dict(self.params) == dict(other.params)
            and self.seed == other.seed
        )


def _execute_task(task: SimTask) -> Any:
    """Module-level trampoline so the pool pickles only the task spec."""
    return task.execute()


@dataclass(frozen=True)
class TaskCompletion:
    """One finished sweep cell, as delivered to ``on_result`` callbacks.

    Attributes:
        index: the task's position in the submitted batch (results keep
            this order; completions may arrive in any order).
        task: the completed :class:`SimTask`, seed filled in.
        value: its result — or a
            :class:`repro.runners.supervisor.PoisonedTask` diagnostics
            record when ``source == "poisoned"``.
        source: ``"executed"`` (a simulation ran), ``"cache"`` (served
            from the on-disk pickle cache) or ``"poisoned"`` (the task
            was quarantined after repeatedly crashing its worker; its
            value is the diagnostics record, never cached).
        duration_s: wall-clock of the successful attempt — measured
            around the call on the serial path, submit-to-completion on
            the pool path; ``None`` for cache hits and poisoned tasks.
    """

    index: int
    task: SimTask
    value: Any
    source: str
    duration_s: float | None = None


def spawn_seeds(base_seed: int | None, n: int) -> list[int]:
    """Derive `n` independent task seeds from one base seed.

    Uses ``numpy.random.SeedSequence.spawn``: child *i*'s stream is
    statistically independent of every sibling and depends only on
    ``(base_seed, i)`` — never on worker count or scheduling — so a sweep
    seeded this way is reproducible bit-for-bit in serial and parallel.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


class SweepRunner:
    """Executes batches of :class:`SimTask` with caching, parallelism and
    bounded retries.

    Args:
        n_workers: process-pool size; ``1`` (the default) runs serially
            in-process, so existing callers see unchanged behavior.
        cache_dir: directory for the on-disk result cache; ``None``
            disables memoization.  With a cache, every completed task is
            written the moment it finishes (not at batch end), so the
            cache doubles as a campaign checkpoint: an interrupted sweep
            rerun with the same tasks resumes from the completed cells.
        base_seed: root of the ``SeedSequence`` used to fill in seeds for
            tasks that do not carry one.
        max_attempts: times a failing task is tried before the sweep
            aborts with :class:`RetryExhaustedError` (default 1 — fail
            fast, the historical behavior).
        retry_backoff_s: base delay before a retry; attempt *k* waits
            ``retry_backoff_s * 2**(k-1)`` seconds, plus jitter.
        retry_jitter: uniform multiplicative jitter on the backoff
            (0.25 = up to +25 %), decorrelating retry storms when many
            workers fail at once.
        task_timeout_s: per-task wall-clock budget on the **pool** path;
            a task still running past it counts as a failed attempt and
            is resubmitted (the stuck worker is abandoned to finish or
            die on its own).  ``None`` disables timeouts.  The serial
            path cannot preempt a running task and ignores this knob.
        retry_seed: seed of the dedicated RNG behind the backoff jitter.
            Defaults to ``base_seed``, so a seeded sweep's retry timing
            is reproducible; it never touches the module-global
            :mod:`random` state (and simulation results never depend on
            it either way).
        max_pool_rebuilds: worker-pool breaks (``BrokenProcessPool``)
            tolerated per batch before the supervisor declares the pool
            unhealthy and degrades to serial in-process execution
            (default 5).  ``0`` degrades on the first break.
        rebuild_backoff_s: base delay before rebuilding a broken pool;
            break *k* waits ``rebuild_backoff_s * 2**(k-1)`` seconds,
            capped at 30 s.
        db: write-through results/provenance store — a
            :class:`repro.service.ResultsDB` or a path to open one.
            ``None`` (the default) records nothing.
        run_label: default campaign label for :meth:`run`'s DB rows.

    Attributes:
        tasks_submitted: total tasks handed to :meth:`run`.
        tasks_executed: tasks that actually ran a simulation (cache
            misses); a warm-cache rerun leaves this at 0.
        cache_hits: tasks satisfied from the on-disk cache.
        tasks_retried: failed/timed-out attempts that were retried.
        pool_rebuilds: worker-pool breaks survived by rebuilding.
        tasks_poisoned: tasks quarantined after crashing their workers.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache_dir: str | None = None,
        base_seed: int | None = None,
        *,
        max_attempts: int = 1,
        retry_backoff_s: float = 0.5,
        retry_jitter: float = 0.25,
        task_timeout_s: float | None = None,
        retry_seed: int | None = None,
        max_pool_rebuilds: int = 5,
        rebuild_backoff_s: float = 0.5,
        db: "ResultsDB | str | None" = None,
        run_label: str = "",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        if retry_jitter < 0:
            raise ValueError(f"retry_jitter must be >= 0, got {retry_jitter}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0 or None, got {task_timeout_s}"
            )
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        if rebuild_backoff_s < 0:
            raise ValueError(
                f"rebuild_backoff_s must be >= 0, got {rebuild_backoff_s}"
            )
        self.n_workers = n_workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.base_seed = base_seed
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self.retry_jitter = retry_jitter
        self.task_timeout_s = task_timeout_s
        self.max_pool_rebuilds = max_pool_rebuilds
        self.rebuild_backoff_s = rebuild_backoff_s
        # Jitter draws come from a dedicated, seedable stream: retry
        # timing is reproducible for seeded sweeps and never perturbs
        # (or is perturbed by) the module-global `random` state.
        self._retry_rng = random.Random(
            retry_seed if retry_seed is not None else base_seed
        )
        if db is not None and not hasattr(db, "record_task"):
            from repro.service.db import as_results_db

            db = as_results_db(db)
        self.db = db
        self.run_label = run_label
        self.tasks_submitted = 0
        self.tasks_executed = 0
        self.cache_hits = 0
        self.tasks_retried = 0
        self.pool_rebuilds = 0
        self.tasks_poisoned = 0

    # ------------------------------------------------------------------ api

    def run(
        self,
        tasks: Iterable[SimTask],
        *,
        run_label: str | None = None,
        on_result: Callable[[TaskCompletion], None] | None = None,
        run_id: int | None = None,
        index_base: int = 0,
    ) -> list[Any]:
        """Execute `tasks`, returning results in task order.

        Cached results are loaded without executing anything; the rest
        run serially or on the process pool.  Results are always ordered
        like the input regardless of completion order, and each result
        is cached the moment its task completes, so an aborted run
        checkpoints every finished cell.

        Args:
            tasks: the batch to execute.
            run_label: label for this batch's campaign row when a ``db``
                is attached (defaults to the runner's ``run_label``).
            on_result: called in the coordinating process with a
                :class:`TaskCompletion` for every finished task — cache
                hits first (in batch order), then executions in
                completion order.  Exceptions propagate and abort the
                sweep.
            run_id: record into this existing campaign row instead of
                opening (and closing) one — for callers like
                :class:`repro.service.JobQueue` that execute one logical
                campaign as several ``run()`` calls.  The caller owns
                the row's lifecycle (``begin_run``/``finish_run``).
            index_base: offset added to the recorded ``task_index`` of
                every task when appending into an existing `run_id`.

        Raises:
            RetryExhaustedError: a task failed ``max_attempts`` times.
        """
        ordered = self._assign_seeds(list(tasks))
        self.tasks_submitted += len(ordered)
        results: list[Any] = [None] * len(ordered)

        recording = self.db is not None
        owns_run = recording and run_id is None
        if owns_run:
            run_id = self.db.begin_run(
                label=self.run_label if run_label is None else run_label,
                n_tasks=len(ordered),
            )

        def emit(completion: TaskCompletion, key: str | None) -> None:
            """Checkpoint, record and deliver one finished task."""
            if completion.source == "cache":
                self.cache_hits += 1
            elif completion.source == "poisoned":
                # Quarantine diagnostics are never cached: a rerun must
                # retry the task, not replay its conviction.
                pass
            else:
                self.tasks_executed += 1
                if key is not None and self.cache is not None:
                    self.cache.put(key, completion.value)
            results[completion.index] = completion.value
            if recording:
                poisoned = completion.source == "poisoned"
                self.db.record_task(
                    run_id,
                    index_base + completion.index,
                    completion.task,
                    completion.value,
                    source="executed" if poisoned else completion.source,
                    duration_s=completion.duration_s,
                    status="poisoned" if poisoned else "ok",
                )
            if on_result is not None:
                on_result(completion)

        pending: list[tuple[int, SimTask, str | None]] = []
        try:
            for index, task in enumerate(ordered):
                key = (
                    task.cache_key()
                    if self.cache is not None or recording
                    else None
                )
                if self.cache is not None:
                    hit, value = self.cache.lookup(key)
                    if hit:
                        emit(TaskCompletion(index, task, value, "cache"), key)
                        continue
                pending.append((index, task, key))

            if pending:
                # A single pending task skips the pool — unless a
                # timeout is set, which only the pool path can enforce
                # (the serial path cannot preempt a running task).
                one = len(pending) == 1 and self.task_timeout_s is None
                if self.n_workers == 1 or one:
                    self._execute_serial(pending, emit)
                else:
                    self._execute_pooled(pending, emit)
        except KeyboardInterrupt:
            # Completed cells were flushed through `emit` as they
            # landed; stamp the campaign row so a resumed run can tell
            # an interrupt from a genuine failure.
            if owns_run:
                self.db.finish_run(run_id, status="interrupted")
            raise
        except BaseException:
            if owns_run:
                self.db.finish_run(run_id, status="failed")
            raise
        if owns_run:
            self.db.finish_run(run_id, status="completed")
        return results

    def map(
        self,
        fn: Callable[..., Any],
        param_sets: Iterable[Mapping[str, Any]],
        seeds: Sequence[int | None] | None = None,
    ) -> list[Any]:
        """Convenience wrapper: one task per parameter mapping.

        >>> runner = SweepRunner()
        >>> from repro.core.theory import simulate_rumor_spread
        >>> curves = runner.map(
        ...     simulate_rumor_spread, [{"n": 32}, {"n": 64}], seeds=[1, 2]
        ... )
        >>> [curve[0] for curve in curves]
        [1, 1]
        """
        sets = list(param_sets)
        if seeds is None:
            seed_list: Sequence[int | None] = [None] * len(sets)
        else:
            seed_list = list(seeds)
            if len(seed_list) != len(sets):
                raise ValueError(
                    f"got {len(seed_list)} seeds for {len(sets)} param sets"
                )
        return self.run(
            SimTask.call(fn, seed=seed, **params)
            for params, seed in zip(sets, seed_list)
        )

    def assign_seeds(self, tasks: Iterable[SimTask]) -> list[SimTask]:
        """Fill in missing task seeds from ``base_seed``, by batch index.

        Public for callers that split a campaign into several
        :meth:`run` calls (the job queue executes cancellable chunks):
        seeding the *whole* batch up front keeps every task's seed a
        function of its position in the full campaign, so chunked and
        single-call execution stay bit-identical.
        """
        return self._assign_seeds(list(tasks))

    # ------------------------------------------------------------- internals

    def _assign_seeds(self, tasks: list[SimTask]) -> list[SimTask]:
        """Fill in missing task seeds from `base_seed`, by task index.

        Seeds are a function of (base_seed, position in the batch) only,
        so the same batch always gets the same seeds — independent of
        worker count, scheduling, or which results were cached.
        """
        if self.base_seed is None or all(t.seed is not None for t in tasks):
            return tasks
        derived = spawn_seeds(self.base_seed, len(tasks))
        return [
            task if task.seed is not None else replace(task, seed=derived[i])
            for i, task in enumerate(tasks)
        ]

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with uniform jitter for retry `attempt`.

        Jitter draws come from the runner's dedicated ``retry_seed``
        stream — never the module-global :mod:`random` — so retry timing
        is reproducible for seeded sweeps (the historical global draw
        made retrying runs under ``task_timeout_s`` time-dependent).
        """
        delay = self.retry_backoff_s * (2 ** (attempt - 1))
        if self.retry_jitter:
            delay *= 1.0 + self.retry_jitter * self._retry_rng.random()
        return delay

    def _execute_serial(
        self,
        pending: list[tuple[int, SimTask, str | None]],
        emit: Callable[[TaskCompletion, str | None], None],
    ) -> None:
        """In-process execution with bounded retry/backoff per task."""
        for index, task, key in pending:
            last_error: BaseException | None = None
            for attempt in range(1, self.max_attempts + 1):
                started = time.perf_counter()
                try:
                    value = _execute_task(task)
                except Exception as error:  # noqa: BLE001 - retried below
                    last_error = error
                    if attempt == self.max_attempts:
                        raise RetryExhaustedError(
                            task, attempt, error
                        ) from error
                    self.tasks_retried += 1
                    time.sleep(self._backoff_delay(attempt))
                else:
                    emit(
                        TaskCompletion(
                            index,
                            task,
                            value,
                            "executed",
                            time.perf_counter() - started,
                        ),
                        key,
                    )
                    break
            else:  # pragma: no cover - loop always breaks or raises
                raise RetryExhaustedError(task, self.max_attempts, last_error)

    def _execute_pooled(
        self,
        pending: list[tuple[int, SimTask, str | None]],
        emit: Callable[[TaskCompletion, str | None], None],
    ) -> None:
        """Process-pool execution with retry, timeout and checkpointing.

        Delegated to :class:`repro.runners.supervisor.FleetSupervisor`,
        which additionally survives worker crashes (pool rebuilds with
        capped backoff), quarantines poison tasks and degrades to serial
        execution when the pool is unavailable or persistently
        unhealthy.
        """
        from repro.runners.supervisor import FleetSupervisor

        FleetSupervisor(self).execute(pending, emit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = self.cache.root if self.cache is not None else None
        return (
            f"SweepRunner(n_workers={self.n_workers}, cache_dir={cache!r}, "
            f"executed={self.tasks_executed}, hits={self.cache_hits}, "
            f"retried={self.tasks_retried})"
        )
