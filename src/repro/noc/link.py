"""Physical link timing and energy parameters.

The thesis' bus comparison (§4.1.4) characterises a 0.25 µm tile-to-tile
link as running at 381 MHz and dissipating 2.4e-10 J per transmitted bit.
:class:`LinkModel` carries those constants; the per-packet quantities are
derived from the packet's on-wire size.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkModel:
    """Electrical model of one tile-to-tile link.

    Attributes:
        frequency_hz: maximum toggling rate of the link (bits per second per
            wire; the model treats the link as one bit-serial lane, which
            only scales latency by a constant and cancels in comparisons).
        energy_per_bit_j: switching energy per transmitted bit.
        width_bits: parallel wires in the link (divides serialisation time).
    """

    frequency_hz: float = 381e6
    energy_per_bit_j: float = 2.4e-10
    width_bits: int = 32

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be > 0, got {self.frequency_hz}")
        if self.energy_per_bit_j < 0:
            raise ValueError(
                f"energy per bit must be >= 0, got {self.energy_per_bit_j}"
            )
        if self.width_bits < 1:
            raise ValueError(f"width must be >= 1 bit, got {self.width_bits}")

    def transfer_time_s(self, size_bits: int) -> float:
        """Serialisation time for one packet of `size_bits` bits."""
        if size_bits < 0:
            raise ValueError(f"size_bits must be >= 0, got {size_bits}")
        cycles = -(-size_bits // self.width_bits)  # ceil division
        return cycles / self.frequency_hz

    def transfer_energy_j(self, size_bits: int) -> float:
        """Energy to push one packet of `size_bits` bits over this link."""
        if size_bits < 0:
            raise ValueError(f"size_bits must be >= 0, got {size_bits}")
        return size_bits * self.energy_per_bit_j


#: The 0.25 µm link of thesis §4.1.4.
DEFAULT_LINK = LinkModel()
