"""Designer-facing tuning tools.

The thesis sells *p* and the TTL as the knobs that "tune the trade-off
between performance and energy consumption" (§3.2.2) but leaves picking
them to the designer.  These helpers close that loop with seeded
Monte-Carlo estimation on the actual simulator:

* :func:`delivery_probability` — P(a unicast arrives) for a given
  (topology, p, TTL, fault level);
* :func:`minimum_ttl` — the smallest TTL meeting a delivery target
  (monotone, found by exponential + binary search);
* :func:`latency_profile` — delivery-latency quantiles for jitter-aware
  budgeting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.protocol import StochasticProtocol
from repro.faults import FaultConfig
from repro.noc.engine import NocSimulator
from repro.noc.tile import IPCore, TileContext
from repro.noc.topology import Topology


class _Probe(IPCore):
    """Sends one probe packet at round 0."""

    def __init__(self, destination: int, ttl: int) -> None:
        self.destination = destination
        self.ttl = ttl
        self.sent = False

    def on_start(self, ctx: TileContext) -> None:
        ctx.send(self.destination, b"probe", ttl=self.ttl)
        self.sent = True

    @property
    def complete(self) -> bool:
        return self.sent


class _ProbeSink(IPCore):
    def __init__(self) -> None:
        self.arrival_round: int | None = None

    def on_receive(self, ctx: TileContext, packet) -> None:
        if self.arrival_round is None:
            self.arrival_round = ctx.round_index

    @property
    def complete(self) -> bool:
        return self.arrival_round is not None


def _probe_once(
    topology: Topology,
    forward_probability: float,
    source: int,
    destination: int,
    ttl: int,
    fault_config: FaultConfig | None,
    seed: int,
) -> int | None:
    """One seeded probe; returns the arrival round or None."""
    simulator = NocSimulator(
        topology,
        StochasticProtocol(forward_probability),
        fault_config,
        seed=seed,
        default_ttl=ttl,
    )
    sink = _ProbeSink()
    simulator.mount(source, _Probe(destination, ttl))
    simulator.mount(destination, sink)
    simulator.run(ttl + 4)
    return sink.arrival_round


def delivery_probability(
    topology: Topology,
    forward_probability: float,
    source: int,
    destination: int,
    ttl: int,
    fault_config: FaultConfig | None = None,
    trials: int = 100,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of P(unicast source -> destination arrives).

    >>> from repro.noc.topology import Mesh2D
    >>> delivery_probability(Mesh2D(3, 3), 1.0, 0, 8, ttl=6, trials=5)
    1.0
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if ttl < 1:
        raise ValueError(f"ttl must be >= 1, got {ttl}")
    hits = sum(
        _probe_once(
            topology,
            forward_probability,
            source,
            destination,
            ttl,
            fault_config,
            seed + trial,
        )
        is not None
        for trial in range(trials)
    )
    return hits / trials


def minimum_ttl(
    topology: Topology,
    forward_probability: float,
    source: int,
    destination: int,
    target_probability: float = 0.99,
    fault_config: FaultConfig | None = None,
    trials: int = 100,
    seed: int = 0,
    max_ttl: int = 256,
) -> int:
    """Smallest TTL whose estimated delivery probability meets the target.

    Delivery probability is monotone non-decreasing in the TTL (a longer-
    lived packet strictly dominates), so exponential search for an upper
    bound followed by bisection applies.

    Raises:
        RuntimeError: if even `max_ttl` misses the target (e.g. the
            destination is unreachable at this fault level).
    """
    if not 0.0 < target_probability <= 1.0:
        raise ValueError(
            f"target_probability must be in (0, 1], got {target_probability}"
        )

    def meets(ttl: int) -> bool:
        return (
            delivery_probability(
                topology,
                forward_probability,
                source,
                destination,
                ttl,
                fault_config,
                trials,
                seed,
            )
            >= target_probability
        )

    hop_lower_bound = topology.hop_distance(source, destination)
    upper = max(hop_lower_bound, 1)
    while not meets(upper):
        upper *= 2
        if upper > max_ttl:
            raise RuntimeError(
                f"no TTL <= {max_ttl} reaches P >= {target_probability}"
            )
    lower = max(hop_lower_bound, 1)
    while lower < upper:
        middle = (lower + upper) // 2
        if meets(middle):
            upper = middle
        else:
            lower = middle + 1
    return lower


@dataclass(frozen=True)
class LatencyProfile:
    """Delivery-latency statistics from a probe campaign.

    Attributes:
        delivery_rate: fraction of probes that arrived.
        rounds_mean / rounds_p50 / rounds_p95: arrival-round statistics
            over the *delivered* probes.
    """

    delivery_rate: float
    rounds_mean: float
    rounds_p50: float
    rounds_p95: float


def latency_profile(
    topology: Topology,
    forward_probability: float,
    source: int,
    destination: int,
    ttl: int,
    fault_config: FaultConfig | None = None,
    trials: int = 200,
    seed: int = 0,
) -> LatencyProfile:
    """Quantiles of the unicast delivery latency (jitter budgeting)."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    arrivals = [
        _probe_once(
            topology,
            forward_probability,
            source,
            destination,
            ttl,
            fault_config,
            seed + trial,
        )
        for trial in range(trials)
    ]
    delivered = [a for a in arrivals if a is not None]
    if not delivered:
        return LatencyProfile(0.0, float("nan"), float("nan"), float("nan"))
    rounds = np.array(delivered, dtype=float)
    return LatencyProfile(
        delivery_rate=len(delivered) / trials,
        rounds_mean=float(rounds.mean()),
        rounds_p50=float(np.percentile(rounds, 50)),
        rounds_p95=float(np.percentile(rounds, 95)),
    )
