"""Extension experiment: voltage/frequency islands (Ch. 5's first axis).

The thesis names "the combination of different architectural styles —
partitioning the chip into several islands with separate clocks and
voltages" as one half of on-chip diversity, "with the purpose of
optimizing a specific parameter, such as energy consumption", but runs no
experiment on it.  This harness does: the Master-Slave workload runs on a
uniform 5x5 mesh and on the same mesh with a low-voltage island covering
a block of tiles.  Links driven from the island dissipate V^2-scaled
energy; links touching it run slower (extra round delays).  The expected
trade: communication energy down, latency up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.master_slave import MasterSlavePiApp
from repro.core.protocol import StochasticProtocol
from repro.diversity.islands import Island, IslandPlan
from repro.experiments.common import (
    UNSET,
    ExperimentOptions,
    resolve_options,
)
from repro.noc.engine import NocSimulator
from repro.noc.topology import Mesh2D
from repro.runners import SimTask


@dataclass(frozen=True)
class IslandComparison:
    """Uniform vs islanded chip, same workload.

    Attributes:
        island_voltage: supply scale of the low-power island.
        uniform_rounds / islanded_rounds: completion latency.
        uniform_energy_j / islanded_energy_j: Eq. 3 communication energy.
        energy_saving: 1 - islanded/uniform energy.
        latency_penalty: islanded/uniform rounds - 1.
    """

    island_voltage: float
    uniform_rounds: float
    islanded_rounds: float
    uniform_energy_j: float
    islanded_energy_j: float

    @property
    def energy_saving(self) -> float:
        if self.uniform_energy_j == 0:
            return 0.0
        return 1.0 - self.islanded_energy_j / self.uniform_energy_j

    @property
    def latency_penalty(self) -> float:
        if self.uniform_rounds == 0:
            return 0.0
        return self.islanded_rounds / self.uniform_rounds - 1.0


def _island_plan(mesh: Mesh2D, voltage: float) -> IslandPlan:
    """A low-voltage island over the mesh's bottom two rows."""
    members = frozenset(
        mesh.tile_at(row, col)
        for row in (mesh.rows - 2, mesh.rows - 1)
        for col in range(mesh.cols)
    )
    return IslandPlan([Island("low-power", members, voltage_scale=voltage)])


def _run_island_rep(
    islanded: bool,
    island_voltage: float,
    forward_probability: float,
    n_terms: int,
    seed: int,
    max_rounds: int,
) -> tuple[int, float]:
    """One Master-Slave run, uniform or islanded; returns (rounds, energy)."""
    mesh = Mesh2D(5, 5)
    plan = _island_plan(mesh, island_voltage)
    link_energy = plan.link_energy_overrides(mesh.links, 2.4e-10)
    link_delays = plan.link_delay_overrides(mesh.links)
    app = MasterSlavePiApp.default_5x5(n_terms=n_terms)
    simulator = NocSimulator(
        mesh,
        StochasticProtocol(forward_probability),
        seed=seed,
        default_ttl=24,
        link_energy_overrides=link_energy if islanded else None,
        link_delays=link_delays if islanded else None,
    )
    app.deploy(simulator)
    result = simulator.run(max_rounds, until=lambda sim: app.master.complete)
    if not app.master.complete:
        raise RuntimeError("island workload failed to complete")
    return result.rounds, result.energy_j


def run(
    island_voltage: float = 0.6,
    forward_probability: float = 0.5,
    repetitions: int = 4,
    n_terms: int = 400,
    seed: int = 0,
    max_rounds: int = 500,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> IslandComparison:
    """Measure the energy/latency trade of one island partition."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    sweep = opts.make_runner()
    outcomes = sweep.run(
        SimTask.call(
            _run_island_rep,
            islanded=islanded,
            island_voltage=island_voltage,
            forward_probability=forward_probability,
            n_terms=n_terms,
            seed=seed + rep,
            max_rounds=max_rounds,
            label=f"islands {'islanded' if islanded else 'uniform'} rep={rep}",
        )
        for islanded in (False, True)
        for rep in range(repetitions)
    )
    uniform = outcomes[:repetitions]
    islanded = outcomes[repetitions:]
    n = repetitions
    return IslandComparison(
        island_voltage=island_voltage,
        uniform_rounds=sum(r for r, _ in uniform) / n,
        islanded_rounds=sum(r for r, _ in islanded) / n,
        uniform_energy_j=sum(e for _, e in uniform) / n,
        islanded_energy_j=sum(e for _, e in islanded) / n,
    )


def run_voltage_sweep(
    voltages: tuple[float, ...] = (1.0, 0.8, 0.6, 0.5),
    repetitions: int = 3,
    seed: int = 0,
    n_workers: Any = UNSET,
    runner: Any = UNSET,
    cache_dir: Any = UNSET,
    options: ExperimentOptions | None = None,
) -> list[IslandComparison]:
    """The island design space: deeper undervolting saves more, costs more."""
    opts = resolve_options(
        options, runner=runner, n_workers=n_workers, cache_dir=cache_dir
    )
    shared = opts.with_runner(opts.make_runner())
    return [
        run(
            island_voltage=v,
            repetitions=repetitions,
            seed=seed,
            options=shared,
        )
        for v in voltages
    ]
