"""The metrics-collecting engine observer.

:class:`MetricsCollector` plugs into the engine's observer hooks
(:mod:`repro.noc.trace`) and materialises a :class:`RunMetrics` time
series: event hooks accumulate per-round counters, and the
``on_round_end`` boundary hook samples network state (coverage, buffer
occupancy, cumulative energy) directly from the simulator it was bound
to.  Pass it as ``observer=`` — alone, or in a tuple next to a
:class:`repro.noc.trace.TraceRecorder` — and read ``collector.metrics()``
after the run::

    collector = MetricsCollector()
    sim = NocSimulator(Mesh2D(4, 4), StochasticProtocol(0.5),
                       seed=7, observer=collector)
    ...
    sim.run(100)
    print(collector.metrics().to_json())
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.records import RoundSample, RunMetrics
from repro.noc.tile import TileState
from repro.noc.trace import Observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.engine import NocSimulator


class MetricsCollector(Observer):
    """Records a :class:`RunMetrics` per-round time series from one run.

    Lifecycle: the engine calls :meth:`on_bind` once at construction
    (which also resets the collector, so an instance handed to a second
    simulator starts clean), event hooks fire during each round, and
    :meth:`on_round_end` closes the round by sampling simulator state.
    :meth:`metrics` can be called at any time — mid-run it returns the
    series of the rounds completed so far.
    """

    def __init__(self) -> None:
        """Create an unbound collector (the engine binds it on adoption)."""
        self._simulator: "NocSimulator | None" = None
        self._n_tiles = 0
        self._samples: list[RoundSample] = []
        self._reset_round_counters()

    def _reset_round_counters(self) -> None:
        self._transmissions = 0
        self._deliveries = 0
        self._dead_link_drops = 0
        self._overflow_drops = 0
        self._crc_drops = 0
        self._upsets_injected = 0

    # ------------------------------------------------------ lifecycle hooks

    def on_bind(self, simulator: "NocSimulator") -> None:
        """Adopt `simulator` and reset all recorded state."""
        self._simulator = simulator
        self._n_tiles = simulator.topology.n_tiles
        self._samples = []
        self._reset_round_counters()

    def on_round_begin(self, round_index: int) -> None:
        """Open a round: zero the per-round event counters."""
        self._reset_round_counters()

    def on_round_end(self, round_index: int) -> None:
        """Close a round: sample simulator state into a :class:`RoundSample`."""
        simulator = self._simulator
        if simulator is None:
            raise RuntimeError(
                "MetricsCollector is not bound to a simulator; pass it as "
                "NocSimulator(observer=collector) so the engine binds it"
            )
        informed = 0
        occupancy: dict[int, int] = {}
        alive = TileState.ALIVE
        for tile in simulator.tiles.values():
            if tile.informed:
                informed += 1
            if tile.state is alive:
                size = len(tile.send_buffer)
                occupancy[size] = occupancy.get(size, 0) + 1
        self._samples.append(
            RoundSample(
                round_index=round_index,
                informed_tiles=informed,
                transmissions=self._transmissions,
                deliveries=self._deliveries,
                dead_link_drops=self._dead_link_drops,
                overflow_drops=self._overflow_drops,
                crc_drops=self._crc_drops,
                upsets_injected=self._upsets_injected,
                energy_j=float(simulator.stats.energy_j),
                buffer_occupancy=tuple(sorted(occupancy.items())),
                active_scenarios=tuple(
                    getattr(simulator, "active_scenario_phases", ())
                ),
            )
        )

    # ---------------------------------------------------------- event hooks

    def on_transmission(self, round_index, src, dst, packet) -> None:
        """Count a delivered link traversal."""
        self._transmissions += 1

    def on_delivery(self, round_index, tile, packet) -> None:
        """Count a first intact copy handed to an IP."""
        self._deliveries += 1

    def on_dead_link_drop(self, round_index, src, dst) -> None:
        """Count a transmission lost to a crashed link."""
        self._dead_link_drops += 1

    def on_overflow_drop(self, round_index, tile) -> None:
        """Count an arrival dropped by a full input buffer."""
        self._overflow_drops += 1

    def on_crc_drop(self, round_index, tile, packet) -> None:
        """Count a corrupt arrival caught by a tile's CRC."""
        self._crc_drops += 1

    def on_upset_injected(self, round_index, src, dst, packet) -> None:
        """Count an in-flight copy scrambled by a data upset."""
        self._upsets_injected += 1

    # --------------------------------------------------------------- product

    def metrics(self) -> RunMetrics:
        """The recorded time series so far, as an immutable `RunMetrics`."""
        if self._simulator is None:
            raise RuntimeError(
                "MetricsCollector is not bound to a simulator; pass it as "
                "NocSimulator(observer=collector) so the engine binds it"
            )
        return RunMetrics(n_tiles=self._n_tiles, samples=tuple(self._samples))


def run_with_metrics(simulator_builder, *, max_rounds: int = 1000, until=None):
    """Build a simulator with a fresh collector, run it, return both.

    `simulator_builder` is a callable accepting ``observer=`` and
    returning a :class:`repro.noc.engine.NocSimulator`; the return value
    is ``(SimulationResult, RunMetrics)``.  This is the one-liner for
    instrumenting ad-hoc scripts::

        result, metrics = run_with_metrics(
            lambda observer: NocSimulator(topo, proto, seed=1,
                                          observer=observer),
            max_rounds=200,
        )
    """
    collector = MetricsCollector()
    simulator = simulator_builder(observer=collector)
    result = simulator.run(max_rounds, until=until)
    return result, collector.metrics()
