"""Tests for repro.service's asyncio JobQueue front-end."""

from __future__ import annotations

import asyncio
import pickle
import time

import pytest

from repro.core.theory import simulate_rumor_spread
from repro.runners import RetryExhaustedError, SimTask, SweepRunner
from repro.service import JobQueue, JobState, ResultsDB

#: Execution-order log written by _record_cell (in-process, serial runs).
ORDER: list[str] = []


def _record_cell(tag: str, seed: int | None = None) -> str:
    ORDER.append(tag)
    return tag


def _slow_cell(index: int, seed: int | None = None) -> int:
    time.sleep(0.02)
    return index


def _tasks(count: int, n: int = 8, rounds: int = 3) -> list[SimTask]:
    return [
        SimTask.call(simulate_rumor_spread, n=n, rounds=rounds, seed=1000 + i)
        for i in range(count)
    ]


def _run(coro):
    return asyncio.run(coro)


class TestSubmitAndResult:
    def test_results_match_blocking_runner(self):
        tasks = _tasks(6)

        async def scenario():
            async with JobQueue(n_workers=1) as queue:
                job_id = await queue.submit(tasks, label="six")
                return await queue.result(job_id)

        assert _run(scenario()) == SweepRunner().run(tasks)

    def test_chunking_never_changes_results(self):
        tasks = _tasks(7)
        blocking = SweepRunner().run(tasks)

        async def scenario(chunk_size):
            async with JobQueue(chunk_size=chunk_size) as queue:
                return await queue.result(await queue.submit(tasks))

        for chunk_size in (1, 3, 100):
            assert _run(scenario(chunk_size)) == blocking

    def test_batch_global_seeding_matches_one_run_call(self):
        # Unseeded tasks: seeds must be assigned over the whole batch at
        # submit time, not per chunk.
        def unseeded():
            return [
                SimTask.call(simulate_rumor_spread, n=8, rounds=3)
                for _ in range(6)
            ]

        blocking = SweepRunner(base_seed=42).run(unseeded())

        async def scenario():
            runner = SweepRunner(base_seed=42)
            async with JobQueue(runner, chunk_size=2) as queue:
                return await queue.result(await queue.submit(unseeded()))

        assert _run(scenario()) == blocking

    def test_empty_submission_is_an_error(self):
        async def scenario():
            async with JobQueue() as queue:
                with pytest.raises(ValueError, match="empty"):
                    await queue.submit([])

        _run(scenario())

    def test_unknown_job_id_raises(self):
        async def scenario():
            async with JobQueue() as queue:
                with pytest.raises(KeyError, match="unknown job id"):
                    queue.status("job-9999")

        _run(scenario())

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            JobQueue(chunk_size=0)


class TestLifecycle:
    def test_status_reaches_completed(self):
        async def scenario():
            async with JobQueue() as queue:
                job_id = await queue.submit(_tasks(3), label="tracked")
                assert queue.status(job_id).state in (
                    JobState.QUEUED, JobState.RUNNING
                )
                await queue.result(job_id)
                status = queue.status(job_id)
                assert status.state is JobState.COMPLETED
                assert status.state.terminal
                assert status.n_done == status.n_tasks == 3
                assert status.label == "tracked"
                assert status.error is None
                assert [s.job_id for s in queue.jobs()] == [job_id]

        _run(scenario())

    def test_failed_job_surfaces_its_error(self):
        bad = [SimTask.call(simulate_rumor_spread, n=-1, seed=0)]

        async def scenario():
            async with JobQueue() as queue:
                job_id = await queue.submit(bad)
                with pytest.raises(RetryExhaustedError, match="n must be >= 1"):
                    await queue.result(job_id)
                status = queue.status(job_id)
                assert status.state is JobState.FAILED
                assert "n must be >= 1" in status.error

        _run(scenario())

    def test_priority_order_with_fifo_ties(self):
        ORDER.clear()

        async def scenario():
            async with JobQueue() as queue:
                # Three submits without yielding to the loop: all three
                # are queued before the worker pops anything.
                a = await queue.submit(
                    [SimTask.call(_record_cell, tag="a", seed=0)]
                )
                b = await queue.submit(
                    [SimTask.call(_record_cell, tag="b", seed=0)]
                )
                c = await queue.submit(
                    [SimTask.call(_record_cell, tag="c", seed=0)],
                    priority=5,
                )
                await queue.join()
                return a, b, c

        _run(scenario())
        # Highest priority first; FIFO within the tied priority level.
        assert ORDER == ["c", "a", "b"]


class TestStreaming:
    def test_stream_replays_for_late_subscribers(self):
        tasks = _tasks(5)

        async def scenario():
            async with JobQueue() as queue:
                job_id = await queue.submit(tasks)
                await queue.result(job_id)  # job fully done before streaming
                completions = [c async for c in queue.stream(job_id)]
                return completions

        completions = _run(scenario())
        assert [c.index for c in completions] == list(range(5))
        assert [c.value for c in completions] == SweepRunner().run(tasks)
        assert all(c.source == "executed" for c in completions)

    def test_live_stream_sees_every_completion_in_order(self):
        tasks = _tasks(6)

        async def scenario():
            async with JobQueue(chunk_size=2) as queue:
                job_id = await queue.submit(tasks)
                return [c.index async for c in queue.stream(job_id)]

        assert _run(scenario()) == list(range(6))

    def test_stream_raises_for_failed_jobs(self):
        bad = [SimTask.call(simulate_rumor_spread, n=-1, seed=0)]

        async def scenario():
            async with JobQueue() as queue:
                job_id = await queue.submit(bad)
                with pytest.raises(RetryExhaustedError, match="n must be >= 1"):
                    async for _ in queue.stream(job_id):
                        pass

        _run(scenario())


class TestCancellation:
    def test_queued_job_cancels_instantly(self):
        async def scenario():
            async with JobQueue() as queue:
                blocker = await queue.submit(
                    [SimTask.call(_slow_cell, index=i, seed=0)
                     for i in range(4)]
                )
                victim = await queue.submit(_tasks(3))
                assert await queue.cancel(victim)
                assert queue.status(victim).state is JobState.CANCELLED
                with pytest.raises(asyncio.CancelledError):
                    await queue.result(victim)
                await queue.result(blocker)
                # Terminal jobs are no longer cancellable.
                assert not await queue.cancel(victim)
                assert not await queue.cancel(blocker)

        _run(scenario())

    def test_running_job_stops_at_chunk_boundary_and_resumes(
        self, cache_dir
    ):
        tasks = [
            SimTask.call(_slow_cell, index=i, seed=0) for i in range(10)
        ]

        async def cancel_mid_run():
            async with JobQueue(cache_dir=cache_dir, chunk_size=2) as queue:
                job_id = await queue.submit(tasks)
                while queue.status(job_id).n_done < 2:
                    await asyncio.sleep(0.002)
                assert await queue.cancel(job_id)
                await queue.join()
                status = queue.status(job_id)
                assert status.state is JobState.CANCELLED
                return status.n_done

        done = _run(cancel_mid_run())
        assert 2 <= done < 10

        async def resume():
            async with JobQueue(cache_dir=cache_dir, chunk_size=2) as queue:
                job_id = await queue.submit(tasks)
                result = await queue.result(job_id)
                return result, queue.status(job_id)

        result, status = _run(resume())
        assert result == list(range(10))
        assert status.state is JobState.COMPLETED
        # The checkpointed cells come back from the cache, unexecuted.
        assert status.n_cached >= done

    def test_cancel_races_chunk_boundary_without_orphan_db_rows(
        self, cache_dir, tmp_path
    ):
        """Cancel mid-chunk while ResultsDB write-through is in flight.

        The cancel request lands while a chunk is still executing (its
        task rows are being appended to the database).  The job must
        stop at the chunk boundary leaving the store consistent — the
        campaign row stamped ``cancelled``, exactly one task row per
        delivered completion, none orphaned on a ``running`` run — and
        a resubmission over the same cache must resume bit-identically.
        """
        db_path = tmp_path / "race.db"
        tasks = [
            SimTask.call(_slow_cell, index=i, seed=0) for i in range(10)
        ]

        async def cancel_mid_chunk():
            async with JobQueue(
                cache_dir=cache_dir, db=db_path, chunk_size=3
            ) as queue:
                job_id = await queue.submit(tasks, label="race")
                # Wait for the first write-through, i.e. mid-chunk: the
                # chunk has started delivering but has not finished.
                while queue.status(job_id).n_done < 1:
                    await asyncio.sleep(0.002)
                assert await queue.cancel(job_id)
                await queue.join()
                status = queue.status(job_id)
                assert status.state is JobState.CANCELLED
                return status.n_done

        done = _run(cancel_mid_chunk())
        # The in-flight chunk ran to its boundary; nothing after it did.
        assert 1 <= done < 10
        assert done % 3 == 0

        with ResultsDB(db_path) as db:
            (run,) = db.runs()
            assert run["status"] == "cancelled"
            assert run["finished_at"] is not None
            rows = db.query(
                "SELECT task_index, source FROM tasks ORDER BY task_index"
            )
            # One row per delivered completion — no orphans from the
            # cancelled tail, no rows outside the campaign.
            assert [row["task_index"] for row in rows] == list(range(done))
            orphans = db.query(
                "SELECT COUNT(*) AS n FROM tasks WHERE run_id NOT IN "
                "(SELECT run_id FROM runs)"
            )
            assert orphans[0]["n"] == 0

        async def resume():
            async with JobQueue(
                cache_dir=cache_dir, db=db_path, chunk_size=3
            ) as queue:
                job_id = await queue.submit(tasks, label="race resume")
                result = await queue.result(job_id)
                return result, queue.status(job_id)

        result, status = _run(resume())
        assert result == list(range(10))  # bit-identical to a clean run
        assert status.n_cached >= done  # checkpointed cells not re-run

        with ResultsDB(db_path) as db:
            statuses = [run["status"] for run in db.runs()]
            assert statuses == ["cancelled", "completed"]
            full = db.query(
                "SELECT COUNT(*) AS n FROM tasks t JOIN runs r "
                "ON t.run_id = r.run_id WHERE r.status = 'completed'"
            )
            assert full[0]["n"] == 10


class TestDatabaseParity:
    def test_nine_cell_campaign_matches_legacy_pickle_path(
        self, tmp_path
    ):
        cells = [
            SimTask.call(simulate_rumor_spread, n=n, rounds=4, seed=seed)
            for n in (8, 16, 32)
            for seed in (1, 2, 3)
        ]
        legacy_cache = tmp_path / "legacy_cache"
        legacy_cache.mkdir()
        legacy = SweepRunner(cache_dir=legacy_cache).run(cells)

        db_path = tmp_path / "campaign.db"

        async def scenario():
            async with JobQueue(db=db_path) as queue:
                job_id = await queue.submit(cells, label="nine-cell")
                return await queue.result(job_id)

        service = _run(scenario())
        assert pickle.dumps(service) == pickle.dumps(legacy)

        with ResultsDB(db_path) as db:
            (run,) = db.runs()
            assert run["status"] == "completed"
            stored = db.results_for_run(run["run_id"])
            assert pickle.dumps(stored) == pickle.dumps(legacy)
            # SQL coverage: every cell present, keys matching the pickle
            # cache's content hashes.
            rows = db.query(
                "SELECT cache_key FROM tasks ORDER BY task_index"
            )
            assert [row["cache_key"] for row in rows] == [
                task.cache_key() for task in cells
            ]

    def test_thousand_cell_campaign_is_bit_identical(self, tmp_path):
        cells = [
            SimTask.call(simulate_rumor_spread, n=8, rounds=2, seed=seed)
            for seed in range(1000)
        ]
        legacy = SweepRunner().run(cells)
        db_path = tmp_path / "big.db"

        async def scenario():
            async with JobQueue(db=db_path, chunk_size=128) as queue:
                job_id = await queue.submit(cells, label="thousand-cell")
                result = await queue.result(job_id)
                return result, queue.status(job_id)

        service, status = _run(scenario())
        assert status.n_done == 1000
        assert pickle.dumps(service) == pickle.dumps(legacy)
        with ResultsDB(db_path) as db:
            (count,) = db.query("SELECT COUNT(*) AS n FROM tasks")
            assert count["n"] == 1000
            (run,) = db.runs()
            assert pickle.dumps(db.results_for_run(run["run_id"])) == (
                pickle.dumps(legacy)
            )
