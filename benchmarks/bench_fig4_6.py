"""Benchmark E5: Fig 4-6 — stochastic NoC vs shared bus."""

from repro.experiments import fig4_6


def test_fig4_6_bus_comparison(benchmark, shape_report):
    comparison = benchmark(fig4_6.run, n_runs=3, n_terms=400, seed=0)
    # Thesis: latency ~11x better on the NoC (links are short and
    # parallel; the bus serialises).  Accept the same order of magnitude.
    assert comparison.latency_ratio > 5.0
    # Thesis: energy "at about the same level" (+5 % under the delivered-
    # path accounting); our path figure must land at the bus's order.
    assert 0.1 < comparison.path_energy_ratio < 1.5
    # Even charging every redundant gossip copy, the premium stays small.
    assert comparison.gross_energy_ratio < 5.0
    # Thesis: energy x delay 7e-12 (NoC) vs 133e-12 (bus) J*s/bit.
    assert comparison.noc_energy_delay < comparison.bus_energy_delay / 5
    shape_report["fig4_6"] = {
        "latency_ratio": round(comparison.latency_ratio, 1),
        "path_energy_ratio": round(comparison.path_energy_ratio, 2),
        "gross_energy_ratio": round(comparison.gross_energy_ratio, 2),
        "edp_noc": f"{comparison.noc_energy_delay:.2e}",
        "edp_bus": f"{comparison.bus_energy_delay:.2e}",
    }
